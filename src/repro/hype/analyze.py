"""Viability analysis: can a subtree still matter to the automaton?

Given the label mask of a subtree (from :mod:`repro.hype.index`), decide

* which selecting-NFA states can still reach an accepting configuration
  consuming only labels available in the subtree (states whose filter gate
  is *definitely false* under the mask are impassable), and
* which AFA states can possibly become true within the subtree.

Both are over-approximations of "possibly useful": masks shrink as one
descends (a child's subtree labels are a subset of its parent's), so using
the subtree-root mask for all depths is sound.  NOT states are treated as
always possibly-true — refuting a negation requires proving its operand
*must* be true, which label information alone cannot.

Results are cached per mask (OptHyPE) / per interned mask id (OptHyPE-C);
documents expose only a handful of distinct masks, so the analysis
amortises to near-zero.
"""

from __future__ import annotations

from ..automata.afa import AND, FINAL, NOT, OR, TRANS, WILDCARD
from ..automata.mfa import MFA
from .index import LabelBits, TEXT_BIT_LABEL


class ViabilityAnalyzer:
    """Per-MFA viability oracle, cached by subtree label mask."""

    def __init__(self, mfa: MFA, bits: LabelBits) -> None:
        self.mfa = mfa
        self.bits = bits
        self._afa_cache: dict[int, list[bool]] = {}
        self._nfa_cache: dict[int, frozenset[int]] = {}
        self._reverse = self._reverse_edges()

    # ------------------------------------------------------------------
    # AFA: possibly-true analysis
    # ------------------------------------------------------------------
    def afa_possibly_true(self, mask: int) -> list[bool]:
        """Per-pool-state "can become true in a subtree with this mask"."""
        cached = self._afa_cache.get(mask)
        if cached is not None:
            return cached
        pool = self.mfa.pool
        n = len(pool.states)
        possible = [False] * n
        element_mask = self.bits.element_mask & mask
        text_bit = self.bits.bit_if_known(TEXT_BIT_LABEL)
        # Leaves first, then a monotone fixpoint for operator states.
        for i, state in enumerate(pool.states):
            if state.kind == FINAL:
                if state.pred is None:
                    possible[i] = True
                elif hasattr(state.pred, "value"):  # TextPred
                    possible[i] = bool(mask & text_bit)
                else:  # PositionPred — decidable anywhere
                    possible[i] = True
            elif state.kind == NOT:
                possible[i] = True  # conservative; see module docstring
        changed = True
        while changed:
            changed = False
            for i, state in enumerate(pool.states):
                if possible[i]:
                    continue
                if state.kind == TRANS:
                    assert state.target is not None
                    if state.label == WILDCARD:
                        label_ok = bool(element_mask)
                    else:
                        label_ok = bool(mask & self.bits.bit_if_known(state.label))
                    if label_ok and possible[state.target]:
                        possible[i] = True
                        changed = True
                elif state.kind == AND:
                    if all(possible[s] for s in state.eps):
                        possible[i] = True
                        changed = True
                elif state.kind == OR:
                    if any(possible[s] for s in state.eps):
                        possible[i] = True
                        changed = True
        self._afa_cache[mask] = possible
        return possible

    # ------------------------------------------------------------------
    # NFA: viable-state analysis
    # ------------------------------------------------------------------
    def viable_nfa_states(self, mask: int) -> frozenset[int]:
        """States from which some final is reachable under the mask.

        A state is *passable* when its gate (λ-annotation) is possibly true;
        the viable set is the backward closure of passable finals over
        transitions whose label lies in the mask (ε-edges always pass).
        """
        cached = self._nfa_cache.get(mask)
        if cached is not None:
            return cached
        nfa = self.mfa.nfa
        possible = self.afa_possibly_true(mask)

        def passable(state: int) -> bool:
            entry = nfa.ann.get(state)
            return entry is None or possible[entry]

        element_mask = self.bits.element_mask & mask
        frontier = [f for f in nfa.finals if passable(f)]
        viable: set[int] = set(frontier)
        while frontier:
            state = frontier.pop()
            for source, label in self._reverse.get(state, ()):  # label edges
                if source in viable or not passable(source):
                    continue
                if label is None:  # ε
                    ok = True
                elif label == WILDCARD:
                    ok = bool(element_mask)
                else:
                    ok = bool(mask & self.bits.bit_if_known(label))
                if ok:
                    viable.add(source)
                    frontier.append(source)
        result = frozenset(viable)
        self._nfa_cache[mask] = result
        return result

    def _reverse_edges(self) -> dict[int, list[tuple[int, str | None]]]:
        reverse: dict[int, list[tuple[int, str | None]]] = {}
        nfa = self.mfa.nfa
        for source in range(nfa.num_states):
            for label, targets in nfa.trans[source].items():
                for target in targets:
                    reverse.setdefault(target, []).append((source, label))
            for target in nfa.eps[source]:
                reverse.setdefault(target, []).append((source, None))
        return reverse
