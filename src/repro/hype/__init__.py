"""HyPE: single-pass MFA evaluation, indexes and the OptHyPE variants."""

from .analyze import ViabilityAnalyzer
from .api import (
    ALGORITHMS,
    HYPE,
    OPTHYPE,
    OPTHYPE_C,
    compile_plan,
    evaluate_hype,
    to_mfa,
)
from .core import (
    CompiledPlan,
    HyPEEvaluator,
    HyPEResult,
    HyPEStats,
    RunCursor,
    hype_eval,
)
from .index import (
    CompressedLabelIndex,
    LabelBits,
    SubtreeLabelIndex,
    build_index,
)

__all__ = [
    "hype_eval",
    "CompiledPlan",
    "RunCursor",
    "compile_plan",
    "HyPEEvaluator",
    "HyPEResult",
    "HyPEStats",
    "evaluate_hype",
    "to_mfa",
    "ALGORITHMS",
    "HYPE",
    "OPTHYPE",
    "OPTHYPE_C",
    "build_index",
    "SubtreeLabelIndex",
    "CompressedLabelIndex",
    "LabelBits",
    "ViabilityAnalyzer",
]
