"""HyPE: single-pass MFA evaluation, indexes and the OptHyPE variants."""

from .analyze import ViabilityAnalyzer
from .api import ALGORITHMS, HYPE, OPTHYPE, OPTHYPE_C, evaluate_hype, to_mfa
from .core import HyPEEvaluator, HyPEResult, HyPEStats, hype_eval
from .index import (
    CompressedLabelIndex,
    LabelBits,
    SubtreeLabelIndex,
    build_index,
)

__all__ = [
    "hype_eval",
    "HyPEEvaluator",
    "HyPEResult",
    "HyPEStats",
    "evaluate_hype",
    "to_mfa",
    "ALGORITHMS",
    "HYPE",
    "OPTHYPE",
    "OPTHYPE_C",
    "build_index",
    "SubtreeLabelIndex",
    "CompressedLabelIndex",
    "LabelBits",
    "ViabilityAnalyzer",
]
