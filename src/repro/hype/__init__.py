"""HyPE: single-pass MFA evaluation, indexes and the OptHyPE variants."""

from .analyze import ViabilityAnalyzer
from .api import (
    ALGORITHMS,
    HYPE,
    OPTHYPE,
    OPTHYPE_C,
    compile_plan,
    evaluate_hype,
    to_mfa,
)
from .core import (
    CompiledPlan,
    HyPEResult,
    HyPEStats,
    RunCursor,
    hype_eval,
)
from .compose import (
    ComposedKernel,
    ComposedOverflow,
    ComposeError,
    composed_payload,
    descend_composed,
    preload_composed,
)
from .index import (
    CompressedLabelIndex,
    LabelBits,
    SubtreeLabelIndex,
    build_index,
)
from .kernel import DenseKernel, descend, kernel_payload

__all__ = [
    "hype_eval",
    "CompiledPlan",
    "RunCursor",
    "compile_plan",
    "HyPEResult",
    "HyPEStats",
    "evaluate_hype",
    "to_mfa",
    "ALGORITHMS",
    "HYPE",
    "OPTHYPE",
    "OPTHYPE_C",
    "build_index",
    "SubtreeLabelIndex",
    "CompressedLabelIndex",
    "LabelBits",
    "ViabilityAnalyzer",
    "DenseKernel",
    "descend",
    "kernel_payload",
    "ComposedKernel",
    "ComposedOverflow",
    "ComposeError",
    "composed_payload",
    "descend_composed",
    "preload_composed",
]


def __getattr__(name: str):
    if name == "HyPEEvaluator":
        raise ImportError(
            "HyPEEvaluator was removed (it had been a deprecated alias "
            "since the plan/run-state split): construct "
            "repro.hype.core.CompiledPlan instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
