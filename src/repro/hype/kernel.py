"""The dense automaton kernel: one flat int-array descent for all paths.

PR 5's interned columnar loop still carried a 9-slot tuple per cached
child transition and re-derived flags (`has_final`, `has_ann`, the pop
condition) per visit.  This module compiles each
:class:`repro.hype.core.CompiledPlan` one level further, into a *dense
transition table* over interned run configurations:

* a **cfg** is an interned ``(mstates, relevant, watch)`` triple — the
  complete automaton-side state of one descent frame.  Cfg ``0`` is the
  dead configuration.  Per-cfg flags are computed once at mint time and
  packed into the transition word, so the hot loop never touches a set:

  ``packed = (cfg << 2) | has_final | (pop_needed << 1)``

  ``packed == 0`` ⇔ dead (prune the subtree for this lane); ``-1`` marks
  an unfilled slot in the per-document ``array('i')`` rows.
* plain-HyPE transitions resolve ``(cfg, label) -> packed`` directly;
  index-equipped plans (OptHyPE/-C) resolve ``(cfg, label) -> edge`` —
  an interned ``(base, relevant, watch)`` pre-filter triple — and then
  ``edge × mask_key -> packed`` through the per-edge filter row, which
  caches the *post*-filter flags too.
* per document, a layout binds each cfg to an ``array('i')`` row indexed
  by interned label id (kept in the existing weak-key row cache of
  :class:`repro.docstore.layout.DocumentLayout`), so a columnar visit is
  one C-array read plus two shifts.

Labels the automaton does not distinguish — anything outside the MFA's
transition alphabet — all share one ``OTHER`` column per cfg: an unseen
label can only take wildcard moves, so its transition is independent of
the label text.  That makes the table *finite and document-independent*,
which is what lets :func:`kernel_payload` close it eagerly at compile
time and ship it inside a :class:`repro.compile.artifact.PlanArtifact`
(format v3): a cold worker rehydrates the closure instead of re-deriving
it on the first requests.

The descent itself — :func:`descend` — is the **single** implementation
behind both :meth:`repro.hype.core.CompiledPlan.run` (a one-lane batch)
and :class:`repro.serve.batch.BatchEvaluator` (N lanes, one pass),
replacing the four hand-mirrored loops that previously had to be edited
in lockstep.  String and columnar modes are the same loop: only the
child source (layout kid spans vs. cached element-children lists) and
the transition probe (array row vs. dict) differ per node.

Thread safety follows the plan contract: cfg/edge minting is
lock-guarded (ids must be unique), every other table is fill-only with
entries that are pure functions of their key, so lost races cost
duplicated work, never wrong answers.
"""

from __future__ import annotations

import threading
import time
from array import array

from ..errors import DeadlineError
from ..faults import fire as _fault_fire
from ..guard import CHECK_INTERVAL

#: Flag bits of a packed transition word (see module docstring).
FINAL_BIT = 1
POP_BIT = 2
CFG_SHIFT = 2

#: The dead configuration's id — and, conveniently, its packed word.
DEAD = 0

#: Sentinel for unfilled slots in the per-document ``array('i')`` rows.
UNFILLED = -1

#: Alias column for labels outside the automaton's transition alphabet.
#: NUL is illegal in XML names, so no document label collides with it.
OTHER_LABEL = "\x00other"


class DenseKernel:
    """Dense transition tables of one :class:`CompiledPlan`.

    Built empty with the plan and filled lazily (or eagerly preloaded
    from a persisted artifact payload); shared by every run and lane of
    the plan, across threads.
    """

    __slots__ = (
        "plan",
        "alphabet",
        "_lock",
        "cfg_ids",
        "cfg_mstates",
        "cfg_relevant",
        "cfg_watch",
        "cfg_m",
        "cfg_r",
        "cfg_size",
        "cfg_has_ann",
        "cfg_packed",
        "quiet",
        "trans",
        "edge_ids",
        "edge_base",
        "edge_base_id",
        "edge_relevant",
        "edge_r",
        "edge_watch",
        "edge_filters",
    )

    def __init__(self, plan) -> None:
        from ..automata.afa import TRANS, WILDCARD

        self.plan = plan
        nfa = plan.mfa.nfa
        labels = nfa.alphabet()
        for holder in plan.mfa.pool.states:
            if holder.kind == TRANS and holder.label != WILDCARD:
                labels.add(holder.label)
        labels.discard(WILDCARD)
        #: Labels with their own transition column; everything else
        #: aliases to :data:`OTHER_LABEL`.
        self.alphabet = frozenset(labels)
        self._lock = threading.Lock()
        # (m_id, r_id, watch) -> cfg id; parallel per-cfg tables below.
        self.cfg_ids: dict = {}
        self.cfg_mstates: list = []
        self.cfg_relevant: list = []
        self.cfg_watch: list = []
        self.cfg_m: list[int] = []
        self.cfg_r: list[int] = []
        self.cfg_size: list[int] = []
        self.cfg_has_ann: list[bool] = []
        self.cfg_packed: list[int] = []
        # cfg -> quiet-pop entry: None (unknown), False (must take the
        # full path: node-dependent predicates), or (dead, report,
        # resolved) — the old (m_id, r_id, watch)-keyed cache, now one
        # list index.
        self.quiet: list = []
        # (cfg, label) -> packed word (plain) or edge word (indexed);
        # unseen labels are stored both under their own key (so the
        # string path stays one probe) and under OTHER_LABEL.
        self.trans: dict = {}
        # (base_id, r_id, watch) -> edge id; parallel per-edge tables.
        self.edge_ids: dict = {}
        self.edge_base: list = []
        self.edge_base_id: list[int] = []
        self.edge_relevant: list = []
        self.edge_r: list[int] = []
        self.edge_watch: list = []
        # edge id -> {mask_key -> packed word} (document-dependent, but
        # index-equipped plans are document-bound, so plan-wide is safe).
        self.edge_filters: list[dict] = []
        empty, empty_id = plan._intern(frozenset())
        assert self.cfg_of(empty, empty_id, empty, empty_id, ()) == DEAD

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def cfg_of(self, mstates, m_id, relevant, r_id, watch) -> int:
        """The cfg id of ``(mstates, relevant, watch)`` (minted once)."""
        key = (m_id, r_id, watch)
        cfg = self.cfg_ids.get(key)
        if cfg is not None:
            return cfg
        nfa = self.plan.mfa.nfa
        with self._lock:
            cfg = self.cfg_ids.get(key)
            if cfg is not None:
                return cfg
            cfg = len(self.cfg_packed)
            has_final = bool(mstates & nfa.finals)
            has_ann = any(s in nfa.ann for s in mstates)
            pop_needed = bool(relevant) and bool(watch or has_ann)
            packed = (cfg << CFG_SHIFT) | (FINAL_BIT if has_final else 0)
            if pop_needed:
                packed |= POP_BIT
            self.cfg_mstates.append(mstates)
            self.cfg_relevant.append(relevant)
            self.cfg_watch.append(watch)
            self.cfg_m.append(m_id)
            self.cfg_r.append(r_id)
            self.cfg_size.append(len(mstates))
            self.cfg_has_ann.append(has_ann)
            self.cfg_packed.append(packed)
            self.quiet.append(None)
            # Publish last: readers only index the tables by ids they
            # obtained from this dict.
            self.cfg_ids[key] = cfg
            return cfg

    def edge_of(self, base, base_id, relevant, r_id, watch) -> int:
        """The pre-filter edge id of ``(base, relevant, watch)``."""
        key = (base_id, r_id, watch)
        eid = self.edge_ids.get(key)
        if eid is not None:
            return eid
        with self._lock:
            eid = self.edge_ids.get(key)
            if eid is not None:
                return eid
            eid = len(self.edge_base)
            self.edge_base.append(base)
            self.edge_base_id.append(base_id)
            self.edge_relevant.append(relevant)
            self.edge_r.append(r_id)
            self.edge_watch.append(watch)
            self.edge_filters.append({})
            self.edge_ids[key] = eid
            return eid

    # ------------------------------------------------------------------
    # Transition resolution (slow path; results land in the tables)
    # ------------------------------------------------------------------
    def root_cfg(self, context) -> int:
        """The cfg the run enters ``context`` with (DEAD when pruned)."""
        mstates0, m_id0, relevant0, r_id0 = self.plan.initial_sets(context)
        if not mstates0 and not relevant0:
            return DEAD
        return self.cfg_of(mstates0, m_id0, relevant0, r_id0, ())

    def lookup_trans(self, cfg: int, label: str) -> int:
        """``(cfg, label)``'s packed (or edge) word, computing on miss."""
        trans = self.trans
        packed = trans.get((cfg, label))
        if packed is not None:
            return packed
        if label in self.alphabet:
            packed = self._compute_trans(cfg, label)
        else:
            key = (cfg, OTHER_LABEL)
            packed = trans.get(key)
            if packed is None:
                packed = self._compute_trans(cfg, OTHER_LABEL)
                trans[key] = packed
        trans[(cfg, label)] = packed
        return packed

    def _compute_trans(self, cfg: int, label: str) -> int:
        plan = self.plan
        (
            base_v,
            base_idv,
            mstates_v,
            m_idv,
            relevant_v,
            r_idv,
            watch,
            _has_final,
            _has_ann,
        ) = plan._compute_child_sets(
            self.cfg_mstates[cfg], self.cfg_relevant[cfg], label
        )
        if not mstates_v and not relevant_v:
            return DEAD
        if plan.index is not None:
            eid = self.edge_of(base_v, base_idv, relevant_v, r_idv, watch)
            return (eid << 1) | 1
        child = self.cfg_of(mstates_v, m_idv, relevant_v, r_idv, watch)
        return self.cfg_packed[child]

    def fill_filter(self, eid: int, mask_key, node_id: int) -> int:
        """Resolve one ``edge × mask_key`` filter-row entry (OptHyPE)."""
        plan = self.plan
        mstates_f, m_idf, relevant_f, r_idf = plan._apply_index(
            self.edge_base[eid],
            self.edge_base_id[eid],
            self.edge_relevant[eid],
            self.edge_r[eid],
            node_id,
        )
        if not mstates_f and not relevant_f:
            packed = DEAD
        else:
            cfg = self.cfg_of(
                mstates_f, m_idf, relevant_f, r_idf, self.edge_watch[eid]
            )
            packed = self.cfg_packed[cfg]
        self.edge_filters[eid][mask_key] = packed
        return packed

    # ------------------------------------------------------------------
    # Pop (bottom-up AFA resolution), cfg-keyed
    # ------------------------------------------------------------------
    def pop_frame(self, frame, cursor) -> None:
        """Pop one descent frame (lines 11-21 of the paper's Fig. 6)."""
        cfg = frame[2]
        trans_true = frame[3]
        if not trans_true:
            quiet = self.quiet[cfg]
            if quiet is None:
                quiet = self._compute_quiet(cfg)
            if quiet is not False:
                dead, report, resolved = quiet
                if dead:
                    cursor.deaths[frame[1]] = dead
                cursor.stats.afa_states_resolved += resolved
                if report:
                    parent = frame[4]
                    if parent is not None:
                        trues = parent[3]
                        if trues is None:
                            trues = parent[3] = set()
                        trues.update(report)
                return
        plan = self.plan
        r_id = self.cfg_r[cfg]
        finals, trans, groups = plan._relevant_plan(
            r_id, self.cfg_relevant[cfg]
        )
        node = frame[0]
        bits = 0
        for position, (_state, pred) in enumerate(finals):
            if pred is None or pred.holds(node):
                bits |= 1 << position
        if not trans_true:
            # No child contributed a truth: resolution depends only on
            # the relevant set and the predicate outcomes at this node.
            cache_key = (r_id, bits)
            values = plan._pop_cache.get(cache_key)
            if values is None:
                values = plan._resolve(finals, trans, groups, None, bits)
                plan._pop_cache[cache_key] = values
            if self.cfg_has_ann[cfg]:
                dead_key = (self.cfg_m[cfg], r_id, bits)
                dead = plan._dead_cache.get(dead_key)
                if dead is None:
                    dead = plan._compute_dead(self.cfg_mstates[cfg], values)
                    plan._dead_cache[dead_key] = dead
                if dead:
                    cursor.deaths[frame[1]] = dead
        else:
            # Child truths contributed: the fixpoint is still a pure
            # function of (relevant set, truth set, predicate bits) —
            # documents repeat structure, so memoise on the observed
            # truth sets (3-tuple keys cannot collide with the quiet
            # path's 2-tuple keys in the shared caches).
            truths = frozenset(trans_true)
            cache_key = (r_id, bits, truths)
            values = plan._pop_cache.get(cache_key)
            if values is None:
                values = plan._resolve(finals, trans, groups, trans_true, bits)
                plan._pop_cache[cache_key] = values
            if self.cfg_has_ann[cfg]:
                dead_key = (self.cfg_m[cfg], r_id, bits, truths)
                dead = plan._dead_cache.get(dead_key)
                if dead is None:
                    dead = plan._compute_dead(self.cfg_mstates[cfg], values)
                    plan._dead_cache[dead_key] = dead
                if dead:
                    cursor.deaths[frame[1]] = dead
        cursor.stats.afa_states_resolved += len(values)
        # Report established truths to the parent (fstates↑).
        watch = self.cfg_watch[cfg]
        parent = frame[4]
        if watch and parent is not None:
            trues = parent[3]
            if trues is None:
                trues = parent[3] = set()
            for watcher, target in watch:
                if values.get(target, False):
                    trues.add(watcher)

    def _compute_quiet(self, cfg: int):
        """Build (or reject) one cfg's quiet-pop cache entry.

        ``False`` — cached — when the relevant set carries final-state
        predicates, whose outcome depends on the node and so cannot be
        memoised per cfg.
        """
        plan = self.plan
        r_id = self.cfg_r[cfg]
        finals, trans, groups = plan._relevant_plan(
            r_id, self.cfg_relevant[cfg]
        )
        if finals:
            self.quiet[cfg] = False
            return False
        cache_key = (r_id, 0)
        values = plan._pop_cache.get(cache_key)
        if values is None:
            values = plan._resolve(finals, trans, groups, None, 0)
            plan._pop_cache[cache_key] = values
        dead = None
        if self.cfg_has_ann[cfg]:
            dead_key = (self.cfg_m[cfg], r_id, 0)
            dead = plan._dead_cache.get(dead_key)
            if dead is None:
                dead = plan._compute_dead(self.cfg_mstates[cfg], values)
                plan._dead_cache[dead_key] = dead
        report = tuple(
            watcher
            for watcher, target in self.cfg_watch[cfg]
            if values.get(target, False)
        )
        quiet = (dead, report, len(values))
        self.quiet[cfg] = quiet
        return quiet

    # ------------------------------------------------------------------
    # Persistence (artifact v3 payload)
    # ------------------------------------------------------------------
    def preload(self, payload: dict) -> int:
        """Rehydrate the eager closure of a persisted plan artifact.

        The payload is document-independent: for plain plans it fills
        the ``(cfg, label) -> packed`` table outright; for index-equipped
        plans the same entries become pre-filter edge words (the mask
        filter rows stay lazy — they depend on the document).  Returns
        the number of transition entries installed.
        """
        interned = [
            self.plan._intern(frozenset(states)) for states in payload["sets"]
        ]
        cfg_map: list[int] = []
        for m_idx, r_idx, watch in payload["cfgs"]:
            mstates, m_id = interned[m_idx]
            relevant, r_id = interned[r_idx]
            watch_t = tuple((int(w), int(t)) for w, t in watch)
            if not mstates and not relevant:
                cfg_map.append(DEAD)
            else:
                cfg_map.append(
                    self.cfg_of(mstates, m_id, relevant, r_id, watch_t)
                )
        labels = payload["labels"]
        other = len(labels)
        indexed = self.plan.index is not None
        trans = self.trans
        installed = 0
        for cfg_i, label_i, base_idx, child_i in payload["trans"]:
            key = (
                cfg_map[cfg_i],
                labels[label_i] if label_i < other else OTHER_LABEL,
            )
            if key in trans:
                continue
            child = cfg_map[child_i]
            if child == DEAD:
                trans[key] = DEAD
            elif indexed:
                base, base_id = interned[base_idx]
                eid = self.edge_of(
                    base,
                    base_id,
                    self.cfg_relevant[child],
                    self.cfg_r[child],
                    self.cfg_watch[child],
                )
                trans[key] = (eid << 1) | 1
            else:
                trans[key] = self.cfg_packed[child]
            installed += 1
        return installed


def kernel_payload(plan, max_cfgs: int = 256) -> dict:
    """Eagerly close a (plain) plan's dense table for persistence.

    BFS from the root cfg over the automaton's alphabet plus the OTHER
    column.  The closure is finite because unseen labels alias to one
    column; ``max_cfgs`` caps expansion against adversarial queries (a
    truncated closure is still a valid payload — the kernel fills the
    rest lazily).  The plan must be index-free: the payload describes
    the *pre-filter* table, which serves all three algorithm variants.
    """
    if plan.index is not None:
        raise ValueError("kernel payloads are built from index-free plans")
    kern = plan.kernel
    labels = sorted(kern.alphabet)
    columns = labels + [OTHER_LABEL]
    sets: dict = {}
    set_rows: list[list[int]] = []

    def set_id(fs) -> int:
        idx = sets.get(fs)
        if idx is None:
            idx = sets[fs] = len(set_rows)
            set_rows.append(sorted(fs))
        return idx

    root = kern.root_cfg(None)
    trans_rows: list[list[int]] = []
    seen = {DEAD}
    queue: list[int] = []
    if root != DEAD:
        seen.add(root)
        queue.append(root)
    head = 0
    while head < len(queue):
        cfg = queue[head]
        head += 1
        mstates = kern.cfg_mstates[cfg]
        relevant = kern.cfg_relevant[cfg]
        for label_i, label in enumerate(columns):
            (
                base_v,
                base_idv,
                mstates_v,
                m_idv,
                relevant_v,
                r_idv,
                watch,
                _has_final,
                _has_ann,
            ) = plan._compute_child_sets(mstates, relevant, label)
            if not mstates_v and not relevant_v:
                child = DEAD
            else:
                child = kern.cfg_of(mstates_v, m_idv, relevant_v, r_idv, watch)
            trans_rows.append([cfg, label_i, set_id(base_v), child])
            if child not in seen:
                seen.add(child)
                if len(seen) <= max_cfgs:
                    queue.append(child)
    cfg_rows = [
        [
            set_id(kern.cfg_mstates[cfg]),
            set_id(kern.cfg_relevant[cfg]),
            [[watcher, target] for watcher, target in kern.cfg_watch[cfg]],
        ]
        for cfg in range(len(kern.cfg_packed))
    ]
    return {
        "labels": labels,
        "sets": set_rows,
        "cfgs": cfg_rows,
        "trans": trans_rows,
    }


class _Lane:
    """One plan's per-run view of the shared descent (a batch lane).

    Everything the inner loop touches per child is pre-resolved into a
    slot at lane construction — bound append methods, the kernel's cfg
    columns, the per-document row table — so a visit costs slot reads
    instead of attribute chains (``cursor.visit_nodes.append`` et al.).
    """

    __slots__ = (
        "cursor",
        "kern",
        "trans",
        "indexed",
        "mask_keys",
        "filters",
        "rows",
        "labels",
        "blank",
        "cfg_mstates",
        "visit_nodes",
        "nodes_append",
        "parents_append",
        "mstates_append",
        "finals_append",
        "pop_frame",
        "quiet",
        "deaths",
        "resolved",
    )

    def __init__(self, plan, cursor, layout) -> None:
        kern = plan.kernel
        self.cursor = cursor
        self.kern = kern
        self.trans = kern.trans
        index = plan.index
        self.indexed = index is not None
        self.mask_keys = index.mask_keys if index is not None else None
        self.filters = kern.edge_filters
        if layout is not None:
            self.rows = layout.rows_for(plan)
            self.labels = layout.labels
            self.blank = array("i", [UNFILLED]) * layout.num_labels
        else:
            self.rows = None
            self.labels = None
            self.blank = None
        self.cfg_mstates = kern.cfg_mstates
        self.visit_nodes = cursor.visit_nodes
        self.nodes_append = cursor.visit_nodes.append
        self.parents_append = cursor.visit_parents.append
        self.mstates_append = cursor.visit_mstates.append
        self.finals_append = cursor.finals_seen.append
        self.pop_frame = kern.pop_frame
        # Quiet-pop fast path: the kernel's cfg-indexed quiet entries,
        # the cursor's death map, and a deferred afa_states_resolved
        # accumulator flushed at writeback.
        self.quiet = kern.quiet
        self.deaths = cursor.deaths
        self.resolved = 0

    def row_for(self, cfg: int):
        """The cfg's label-id-indexed packed row for this document."""
        rows = self.rows
        row = rows.get(cfg)
        if row is None:
            row = rows.setdefault(cfg, self.blank[:])
        return row

    def fill_row(self, row, lid: int, cfg: int) -> int:
        packed = self.kern.lookup_trans(cfg, self.labels[lid])
        row[lid] = packed
        return packed


def descend(lanes, context, layout=None, shared=None, deadline=None) -> None:
    """THE descent loop: one shared pass driving every lane's automaton.

    ``lanes`` is a list of ``(plan, cursor)`` pairs; a sequential run is
    a one-lane batch.  With a covering ``layout`` the pass is columnar
    (flat kid spans, ``array('i')`` transition rows); otherwise it walks
    cached element-children lists and the string-keyed table — same
    visits, same order, same counters either way.  ``shared`` (a
    :class:`repro.serve.batch.BatchStats`-shaped object) receives the
    shared-pass visit/skip counters when given.

    ``deadline`` (a :class:`repro.guard.Deadline`) arms a cooperative
    cancellation checkpoint: every :data:`repro.guard.CHECK_INTERVAL`
    loop iterations the clock is read once and an expired deadline
    raises :class:`repro.errors.DeadlineError` mid-descent — the
    caller's cursors are abandoned wholesale, never finished partially.
    With ``deadline=None`` the checkpoint is a single dead branch per
    iteration, keeping the hot path inside the tracing-off overhead
    floor.

    Frames are plain lists ``[node, visit_idx, cfg, trans_true, parent,
    pop_flag, lane, row]`` — the lane and its bound transition row ride
    in the frame, so the per-child loop iterates frames directly with no
    entry wrappers.  Stack entries are ``[frames, next_kid, kid_end,
    kids]``.
    """
    _fault_fire("descend")
    if layout is not None and not layout.covers(context):
        layout = None
    columnar = layout is not None
    entries = []
    live = []
    for plan, cursor in lanes:
        kern = plan.kernel
        cfg = kern.root_cfg(context)
        if cfg == DEAD:
            # Dead at the root: the lane finishes with the all-zero result.
            continue
        lane = _Lane(plan, cursor, layout)
        live.append(lane)
        packed = kern.cfg_packed[cfg]
        cursor.visit_nodes.append(context)
        cursor.visit_parents.append(-1)
        cursor.visit_mstates.append(kern.cfg_mstates[cfg])
        if packed & FINAL_BIT:
            cursor.finals_seen.append(context)
        entries.append(
            [
                context,
                0,
                cfg,
                None,
                None,
                packed & POP_BIT,
                lane,
                lane.row_for(cfg) if columnar else None,
            ]
        )
    if shared is not None:
        shared.visited_elements = 1 if entries else 0
    if entries:
        if columnar:
            nodes = layout.nodes
            kid_ids = layout.kid_ids
            kid_labels = layout.kid_labels
            kid_start = layout.kid_start
            cid0 = context.node_id
            stack = [[entries, kid_start[cid0], kid_start[cid0 + 1], None]]
        else:
            nodes = kid_ids = kid_labels = kid_start = None
            kids0 = context.element_children_cached()
            stack = [[entries, 0, len(kids0), kids0]]
        stack_append = stack.append
        label = ""
        cid = -1
        checks = CHECK_INTERVAL
        deadline_at = None if deadline is None else deadline.expires_at
        perf_counter = time.perf_counter
        while stack:
            if deadline_at is not None:
                checks -= 1
                if checks < 0:
                    checks = CHECK_INTERVAL
                    if perf_counter() >= deadline_at:
                        raise DeadlineError(
                            "deadline exceeded mid-descent "
                            f"({-deadline.remaining_ms():.1f} ms over)"
                        )
            top = stack[-1]
            ki = top[1]
            if ki == top[2]:
                # All element kids processed: pop every lane's frame.
                # Quiet pops (no child truths, node-independent outcome)
                # resolve inline from the cfg-indexed cache; everything
                # else takes the kernel's full pop path.
                stack.pop()
                for frame in top[0]:
                    if frame[5]:
                        lane = frame[6]
                        if not frame[3]:
                            quiet = lane.quiet[frame[2]]
                            if type(quiet) is tuple:
                                dead, report, resolved = quiet
                                if dead:
                                    lane.deaths[frame[1]] = dead
                                lane.resolved += resolved
                                if report:
                                    parent = frame[4]
                                    if parent is not None:
                                        trues = parent[3]
                                        if trues is None:
                                            parent[3] = set(report)
                                        else:
                                            trues.update(report)
                                continue
                        lane.pop_frame(frame, lane.cursor)
                continue
            top[1] = ki + 1
            if columnar:
                lid = kid_labels[ki]
                cid = kid_ids[ki]
                child = None
            else:
                child = top[3][ki]
                label = child.label
            survivors = None
            for frame in top[0]:
                lane = frame[6]
                cfg = frame[2]
                if columnar:
                    packed = frame[7][lid]
                    if packed == UNFILLED:
                        packed = lane.fill_row(frame[7], lid, cfg)
                else:
                    packed = lane.trans.get((cfg, label), UNFILLED)
                    if packed == UNFILLED:
                        packed = lane.kern.lookup_trans(cfg, label)
                if lane.indexed:
                    if packed == DEAD:
                        continue
                    eid = packed >> 1
                    if child is not None:
                        cid = child.node_id
                    mask_key = lane.mask_keys[cid]
                    packed = lane.filters[eid].get(mask_key, UNFILLED)
                    if packed == UNFILLED:
                        packed = lane.kern.fill_filter(eid, mask_key, cid)
                if packed == DEAD:
                    # This lane prunes the subtree; others may descend.
                    continue
                cfg2 = packed >> CFG_SHIFT
                if child is None:
                    child = nodes[cid]
                visit_idx = len(lane.visit_nodes)
                lane.nodes_append(child)
                lane.parents_append(frame[1])
                lane.mstates_append(lane.cfg_mstates[cfg2])
                if packed & FINAL_BIT:
                    lane.finals_append(child)
                if columnar:
                    rows = lane.rows
                    row2 = rows.get(cfg2)
                    if row2 is None:
                        row2 = rows.setdefault(cfg2, lane.blank[:])
                else:
                    row2 = None
                child_frame = [
                    child,
                    visit_idx,
                    cfg2,
                    None,
                    frame,
                    packed & POP_BIT,
                    lane,
                    row2,
                ]
                if survivors is None:
                    survivors = [child_frame]
                else:
                    survivors.append(child_frame)
            if survivors is not None:
                if shared is not None:
                    shared.visited_elements += 1
                if columnar:
                    stack_append(
                        [survivors, kid_start[cid], kid_start[cid + 1], None]
                    )
                else:
                    kids = child.element_children_cached()
                    stack_append([survivors, 0, len(kids), kids])
            elif shared is not None:
                shared.skipped_subtrees += 1
    # Writeback: the loop keeps no per-child counters.  A lane examines
    # every element child of every node it visits, so visited, skipped
    # and cans_vertices all fall out of the visit columns in one cheap
    # closing sweep.
    for lane in live:
        cursor = lane.cursor
        vn = cursor.visit_nodes
        visited = len(vn)
        cursor.visited = visited
        if columnar:
            ks = layout.kid_start
            examined = 0
            for node in vn:
                nid = node.node_id
                examined += ks[nid + 1] - ks[nid]
        else:
            examined = sum(len(n.element_children_cached()) for n in vn)
        cursor.skipped = examined - (visited - 1)
        cursor.cans_vertices = sum(map(len, cursor.visit_mstates))
        if lane.resolved:
            cursor.stats.afa_states_resolved += lane.resolved
