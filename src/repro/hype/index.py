"""Subtree-label indexes powering OptHyPE and OptHyPE-C (Section 6).

The paper: *"we developed a novel index structure which enables HyPE to
skip even more subtrees ... OptHyPE-C [is] the version of HyPE which uses a
compressed version of the index."*

Our index stores, per tree node, the set of element labels occurring
*strictly below* the node (plus a marker bit when any text occurs below).
A subtree whose label set cannot drive the remaining automaton states to an
accepting configuration can be skipped wholesale — the viability analysis
lives in :mod:`repro.hype.analyze`.

* :class:`SubtreeLabelIndex` (OptHyPE) stores one bitmask per node.
* :class:`CompressedLabelIndex` (OptHyPE-C) interns the distinct masks into
  a small table and stores one small id per node — documents have very few
  distinct subtree label-sets (bounded by the DTD structure), so this is
  substantially smaller while answering the same queries.
"""

from __future__ import annotations

from ..xtree.node import XMLTree

#: Pseudo-label bit marking "some text node occurs in this subtree".
TEXT_BIT_LABEL = "#text"


class LabelBits:
    """Interns element labels to bit positions shared by index and analyzer."""

    def __init__(self) -> None:
        self.bit_of: dict[str, int] = {}

    def bit(self, label: str) -> int:
        """The bit for ``label`` (assigned on first use)."""
        existing = self.bit_of.get(label)
        if existing is not None:
            return existing
        position = len(self.bit_of)
        mask = 1 << position
        self.bit_of[label] = mask
        return mask

    def bit_if_known(self, label: str) -> int:
        """The bit for ``label`` or 0 if the label never occurs."""
        return self.bit_of.get(label, 0)

    @property
    def element_mask(self) -> int:
        """Mask of all element-label bits (excludes the text marker)."""
        total = 0
        for label, mask in self.bit_of.items():
            if label != TEXT_BIT_LABEL:
                total |= mask
        return total


def _compute_masks(tree: XMLTree, bits: LabelBits) -> list[int]:
    masks = [0] * len(tree.nodes)
    # Document order puts children after parents, so a reverse sweep sees
    # every child before its parent.
    for node in reversed(tree.nodes):
        parent = node.parent
        if parent is None:
            continue
        if node.is_element:
            contribution = masks[node.node_id] | bits.bit(node.label)
        else:
            contribution = bits.bit(TEXT_BIT_LABEL)
        masks[parent.node_id] |= contribution
    return masks


class SubtreeLabelIndex:
    """Uncompressed per-node bitmask index (OptHyPE)."""

    def __init__(self, tree: XMLTree) -> None:
        self.bits = LabelBits()
        self.masks = _compute_masks(tree, self.bits)

    @classmethod
    def from_parts(
        cls, bits: LabelBits, masks: list[int]
    ) -> "SubtreeLabelIndex":
        """Rehydrate a persisted index without recomputing the masks."""
        self = cls.__new__(cls)
        self.bits = bits
        self.masks = masks
        return self

    def mask(self, node_id: int) -> int:
        """Strict-descendant label mask of a node."""
        return self.masks[node_id]

    def mask_key(self, node_id: int) -> int:
        """Evaluator cache key for a node's mask.

        The uncompressed index has no interned-id table (that is
        OptHyPE-C's whole trick), so the key is the mask itself — an
        ``int`` either way, per the evaluator's int-keyed cache contract.
        """
        return self.masks[node_id]

    @property
    def mask_keys(self):
        """Per-node mask keys as one indexable column (the kernel's view)."""
        return self.masks

    def memory_entries(self) -> int:
        """Index footprint proxy: number of stored mask words."""
        return len(self.masks)

    def distinct_masks(self) -> int:
        return len(set(self.masks))


class CompressedLabelIndex:
    """Interned-mask index (OptHyPE-C): table of unique masks + small ids."""

    def __init__(self, tree: XMLTree) -> None:
        self.bits = LabelBits()
        raw = _compute_masks(tree, self.bits)
        table: dict[int, int] = {}
        self.mask_table: list[int] = []
        self.ids: list[int] = [0] * len(raw)
        for node_id, mask in enumerate(raw):
            idx = table.get(mask)
            if idx is None:
                idx = len(self.mask_table)
                table[mask] = idx
                self.mask_table.append(mask)
            self.ids[node_id] = idx

    @classmethod
    def from_parts(
        cls, bits: LabelBits, mask_table: list[int], ids: list[int]
    ) -> "CompressedLabelIndex":
        """Rehydrate a persisted index without recomputing the masks."""
        self = cls.__new__(cls)
        self.bits = bits
        self.mask_table = mask_table
        self.ids = ids
        return self

    def mask(self, node_id: int) -> int:
        return self.mask_table[self.ids[node_id]]

    def mask_id(self, node_id: int) -> int:
        """The interned id — a compact viability-cache key."""
        return self.ids[node_id]

    def mask_key(self, node_id: int) -> int:
        """Evaluator cache key: the small interned id, not the mask.

        Mask bitmasks grow with the label alphabet; hashing the interned
        id keeps the evaluator's index-filter cache probes O(1) on wide
        documents.
        """
        return self.ids[node_id]

    @property
    def mask_keys(self):
        """Per-node mask keys as one indexable column (the kernel's view)."""
        return self.ids

    def memory_entries(self) -> int:
        """Footprint proxy: id array + unique-mask table."""
        return len(self.ids) + len(self.mask_table)

    def distinct_masks(self) -> int:
        return len(self.mask_table)


Index = SubtreeLabelIndex | CompressedLabelIndex


def build_index(tree: XMLTree, compressed: bool = False) -> Index:
    """Build the OptHyPE (or OptHyPE-C when ``compressed``) index."""
    if compressed:
        return CompressedLabelIndex(tree)
    return SubtreeLabelIndex(tree)
