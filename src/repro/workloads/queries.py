"""Query workloads: the paper's running examples and the Fig. 8/9 families.

All queries are expressed in the concrete syntax of
:mod:`repro.xpath.parser`.  Source-document queries run against the
hospital DTD of Fig. 1(a) (see :mod:`repro.workloads.hospital`); view
queries run against the view DTD of Fig. 1(b) through the ``σ0`` view.
"""

from __future__ import annotations

from ..xpath import ast
from ..xpath.parser import parse_query

# ----------------------------------------------------------------------
# Running examples from the paper
# ----------------------------------------------------------------------

#: Example 1.1 — view query: patients whose ancestors also had heart disease.
EXAMPLE_1_1 = "patient[*//record/diagnosis/text() = 'heart disease']"

#: Example 2.1 — source regular XPath: heart disease skipping a generation.
Q0_FILTER = (
    "visit/treatment/medication/diagnosis/text() = 'heart disease'"
)
EXAMPLE_2_1 = (
    "department/patient["
    f"{Q0_FILTER}"
    " and (parent/patient[not("
    f"{Q0_FILTER}"
    ")]/parent/patient["
    f"{Q0_FILTER}"
    "])/(parent/patient[not("
    f"{Q0_FILTER}"
    ")]/parent/patient["
    f"{Q0_FILTER}"
    "])*]/pname"
)

#: Example 4.1 — view regular XPath: patients with a heart-disease ancestor.
EXAMPLE_4_1 = (
    "(patient/parent)*/patient"
    "[(parent/patient)*/record/diagnosis/text() = 'heart disease']"
)

#: Example 3.1 — the paper's hand rewriting of Example 1.1's Q (source side).
EXAMPLE_3_1_REWRITTEN = (
    "department/patient"
    "[visit/treatment/medication/diagnosis/text() = 'heart disease']"
    "[parent/patient/(parent/patient)*/visit/treatment/medication/diagnosis"
    "/text() = 'heart disease']"
)

# ----------------------------------------------------------------------
# Figure 8 — XPath queries on the source document
# ----------------------------------------------------------------------

#: Fig. 8(a): a filter returning a large set of nodes (thousands).
FIG8A = "//patient[.//diagnosis/text() = 'heart disease']"

#: Fig. 8(b): filter conjunctions (a few hundred answers).
FIG8B = (
    "//patient[.//diagnosis/text() = 'heart disease'"
    " and .//specialty/text() = 'cardiology']"
)

#: Fig. 8(c): filter disjunctions.
FIG8C = (
    "//patient[.//test/text() = 'biopsy'"
    " or .//diagnosis/text() = 'lung disease']"
)

FIG8 = {"fig8a": FIG8A, "fig8b": FIG8B, "fig8c": FIG8C}

# ----------------------------------------------------------------------
# Figure 9 — regular XPath queries on the source document
# ----------------------------------------------------------------------

#: Fig. 9(a): Kleene star outside a filter.
FIG9A = (
    "department/patient/(parent/patient)*"
    "[.//diagnosis/text() = 'heart disease']"
)

#: Fig. 9(b): filter inside a Kleene star.
FIG9B = (
    "department/(patient[visit/treatment/medication]/parent)*"
    "/patient/pname"
)

#: Fig. 9(c): Kleene star in a filter.
FIG9C = (
    "//patient[(parent/patient)*"
    "/visit/treatment/medication/diagnosis/text() = 'heart disease']"
)

FIG9 = {"fig9a": FIG9A, "fig9b": FIG9B, "fig9c": FIG9C}

# ----------------------------------------------------------------------
# View-query workload (over σ0) for the rewriting experiments
# ----------------------------------------------------------------------

VIEW_QUERIES = {
    "all-patients": "patient",
    "ancestors": "(patient/parent)*/patient",
    "example-1.1": EXAMPLE_1_1,
    "example-4.1": EXAMPLE_4_1,
    "diagnosed": "patient/record/diagnosis",
    "deep-records": "patient//record",
    "no-parents": "patient[not(parent)]",
}


def parse_all(workload: dict[str, str]) -> dict[str, ast.Path]:
    """Parse a name→query-string workload into ASTs (fails fast)."""
    return {name: parse_query(text) for name, text in workload.items()}
