"""Multi-tenant hospital traffic: the serving workload for ``repro.serve``.

Models the paper's deployment scenario as a request stream: several
research-institute tenants confined to the security view ``σ0`` pose view
queries (the Fig. 1(b) workload), while a trusted ``admin`` tenant runs
direct source queries (the Fig. 8 family).  Generation is seeded and
deterministic; requests repeat queries with a Zipf-ish skew so the plan
cache and the batcher both see realistic reuse.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable

from ..views.samples import sigma0
from .queries import FIG8, VIEW_QUERIES


@dataclass
class TrafficConfig:
    """Knobs for the request stream.

    Attributes:
        num_tenants: Research tenants (each bound to its own ``σ0`` copy).
        num_requests: Total requests to generate.
        seed: RNG seed; the stream is deterministic given the config.
        admin_rate: Fraction of requests issued by the trusted ``admin``
            tenant directly against the source (Fig. 8 queries).
        hot_fraction: Probability a request re-draws from the two hottest
            view queries (cache/batch reuse skew).
    """

    num_tenants: int = 4
    num_requests: int = 32
    seed: int = 0
    admin_rate: float = 0.2
    hot_fraction: float = 0.5


@dataclass
class TrafficRequest:
    """One generated request: who asks what (and over which document).

    ``document`` is a content hash for multi-document streams
    (:mod:`repro.workloads.multidoc`); ``None`` targets the serving
    service's default document.
    """

    tenant: str
    query: str
    name: str
    document: str | None = None


def tenant_names(config: TrafficConfig) -> list[str]:
    """Research tenant ids, e.g. ``["inst-0", "inst-1", ...]``."""
    return [f"inst-{i}" for i in range(max(1, config.num_tenants))]


def register_tenants(service, config: TrafficConfig) -> None:
    """Register the workload's views and tenants on a ``QueryService``.

    Every research tenant gets its own registered copy of ``σ0`` (separate
    cache keyspace per group, as separate institutes would have), and the
    ``admin`` tenant is bound to the source directly.
    """
    for i, tenant in enumerate(tenant_names(config)):
        view = f"research-{i}"
        service.register_view(view, sigma0())
        service.register_tenant(tenant, view)
    service.register_tenant("admin", None)


def generate_traffic(config: TrafficConfig | None = None) -> list[TrafficRequest]:
    """Generate the mixed query/view request stream."""
    cfg = config or TrafficConfig()
    rng = random.Random(cfg.seed)
    tenants = tenant_names(cfg)
    view_items = sorted(VIEW_QUERIES.items())
    hot = view_items[: max(1, len(view_items) // 3)]
    admin_items = sorted(FIG8.items())
    requests: list[TrafficRequest] = []
    for _ in range(cfg.num_requests):
        if admin_items and rng.random() < cfg.admin_rate:
            name, query = rng.choice(admin_items)
            requests.append(TrafficRequest("admin", query, name))
            continue
        pool = hot if rng.random() < cfg.hot_fraction else view_items
        name, query = rng.choice(pool)
        requests.append(TrafficRequest(rng.choice(tenants), query, name))
    return requests


def waves(requests: list[TrafficRequest], wave_size: int) -> list[list[TrafficRequest]]:
    """Chunk the stream into arrival waves (the unit ``submit_many`` sees)."""
    if wave_size < 1:
        raise ValueError(f"wave size must be >= 1, got {wave_size}")
    return [
        requests[i : i + wave_size] for i in range(0, len(requests), wave_size)
    ]


# ----------------------------------------------------------------------
# Async replay: the stream as live traffic for the admission front-end
# ----------------------------------------------------------------------
@dataclass
class ArrivalConfig:
    """Inter-arrival timing for :func:`replay_async`.

    Gaps are drawn uniformly from ``mean_gap * [1 - jitter, 1 + jitter]``
    seconds — deterministic given ``seed``, so a replay is repeatable
    while still presenting the ragged concurrency real clients would.
    """

    mean_gap: float = 0.002
    jitter: float = 0.75
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_gap < 0:
            raise ValueError(f"mean_gap must be >= 0, got {self.mean_gap}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


def arrival_gaps(count: int, config: ArrivalConfig | None = None) -> list[float]:
    """The seeded gap (seconds) *before* each of ``count`` arrivals.

    The first gap is always ``0.0`` — the replay starts immediately.
    """
    cfg = config or ArrivalConfig()
    rng = random.Random(cfg.seed)
    gaps = [0.0]
    for _ in range(max(0, count - 1)):
        spread = cfg.mean_gap * cfg.jitter
        gaps.append(cfg.mean_gap - spread + rng.random() * 2 * spread)
    return gaps[:count]


async def replay_async(
    submit: Callable[[TrafficRequest], Awaitable],
    requests: list[TrafficRequest],
    arrivals: ArrivalConfig | None = None,
) -> list:
    """Replay the stream as live traffic with inter-arrival jitter.

    ``submit`` is an async entry point (an
    :meth:`repro.serve.admission.AdmissionController.submit` wrapper or a
    :class:`repro.serve.frontend.FrontendClient` call); each request is
    fired as its own task after its seeded gap, so requests whose gaps
    are shorter than service time overlap and coalesce into admission
    waves.  Returns the per-request results in stream order (an exception
    raised for a request is returned in its slot, not raised here).
    """
    tasks: list[asyncio.Task] = []
    for request, gap in zip(requests, arrival_gaps(len(requests), arrivals)):
        if gap > 0:
            await asyncio.sleep(gap)
        tasks.append(asyncio.create_task(submit(request)))
    return await asyncio.gather(*tasks, return_exceptions=True)
