"""The multi-document serving workload: hospital + ontology per request.

Two structurally different documents behind one service: the wide
hospital tree (single ``parent`` recursion chain, Fig. 1(a)) and the
deep-recursion ontology (multi-axis ``isa``/``partof`` recursion with
planted deep chains, :mod:`repro.workloads.ontology`).  Tenants are
cataloged asymmetrically — research institutes may only ask the hospital
document through ``σ0``, curators only the ontology through the curated
view, and the trusted ``admin`` both directly — so the stream exercises
per-request document selection *and* catalog enforcement.

This module is the single source of truth for the fleet's service shape:
:func:`build_multidoc_service` is called both by every fleet worker
(through the spec's builder reference) and by the single-process
reference the fleet smoke compares against, which is what makes
"byte-identical answers" a meaningful check.  Everything is seeded and
content-addressed, so every process derives the same document hashes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, asdict

from ..hype.api import ALGORITHMS, HYPE
from ..views.samples import sigma0
from .hospital import HospitalConfig, generate_hospital_document
from .ontology import (
    ONTOLOGY_SOURCE_QUERIES,
    ONTOLOGY_VIEW_QUERIES,
    OntologyConfig,
    curated_view,
    generate_ontology_document,
)
from .queries import FIG8, VIEW_QUERIES
from .traffic import TrafficRequest

HOSPITAL = "hospital"
ONTOLOGY = "ontology"


@dataclass
class MultiDocConfig:
    """Knobs for the two-document workload (JSON-round-trippable).

    ``ontology_fraction`` steers what share of non-admin requests target
    the ontology document; ``algorithm`` is the serving default (the
    fleet smoke uses ``opthype`` so "zero index builds on a warm worker"
    is a falsifiable claim — plain HyPE builds none to begin with).
    """

    patients: int = 60
    tenants: int = 4
    curators: int = 2
    terms: int = 48
    chain_depth: int = 12
    seed: int = 0
    num_requests: int = 64
    admin_rate: float = 0.2
    hot_fraction: float = 0.5
    ontology_fraction: float = 0.5
    ontology_variants: int = 1
    algorithm: str = HYPE

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MultiDocConfig":
        return cls(**data)


def ontology_names(config: MultiDocConfig) -> list[str]:
    """Ontology document names: ``ontology``, ``ontology-1``, ...

    ``ontology_variants > 1`` generates additional ontology documents
    from shifted seeds — distinct content hashes over the same DTD, so a
    fleet bench can shard more documents across more workers (the ring
    routes whole documents; parallelism is capped by the document
    count).
    """
    return [ONTOLOGY] + [
        f"{ONTOLOGY}-{i}" for i in range(1, max(1, config.ontology_variants))
    ]


def build_documents(config: MultiDocConfig | None = None) -> dict:
    """The workload's documents by name (deterministic given the seed)."""
    cfg = config or MultiDocConfig()
    documents = {
        HOSPITAL: generate_hospital_document(
            HospitalConfig(num_patients=cfg.patients, seed=cfg.seed)
        )
    }
    for i, name in enumerate(ontology_names(cfg)):
        documents[name] = generate_ontology_document(
            config=OntologyConfig(
                num_terms=cfg.terms,
                seed=cfg.seed + i,
                chain_depth=cfg.chain_depth,
            )
        )
    return documents


def curator_names(config: MultiDocConfig) -> list[str]:
    return [f"cur-{i}" for i in range(max(1, config.curators))]


def research_names(config: MultiDocConfig) -> list[str]:
    return [f"inst-{i}" for i in range(max(1, config.tenants))]


def build_multidoc_service(
    config: MultiDocConfig | dict | None = None,
    plan_store=None,
    document_store=None,
    pool_size: int | None = None,
    compose: bool = False,
):
    """Build the two-document service; returns ``(service, hashes)``.

    ``hashes`` maps document names (:data:`HOSPITAL` / :data:`ONTOLOGY`)
    to the content hashes requests route by.  The hospital document is
    the service default, so document-less requests keep working.
    """
    from ..serve.service import QueryService

    if isinstance(config, dict):
        config = MultiDocConfig.from_dict(config)
    cfg = config or MultiDocConfig()
    if cfg.algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {cfg.algorithm!r}")
    documents = build_documents(cfg)
    kwargs = {} if pool_size is None else {"pool_size": pool_size}
    service = QueryService(
        documents[HOSPITAL],
        default_algorithm=cfg.algorithm,
        plan_store=plan_store,
        document_store=document_store,
        compose=compose,
        **kwargs,
    )
    hashes = {HOSPITAL: service.default_document_hash}
    for name in ontology_names(cfg):
        hashes[name] = service.add_document(documents[name])
    ontology_hashes = tuple(hashes[name] for name in ontology_names(cfg))
    for i, tenant in enumerate(research_names(cfg)):
        view = f"research-{i}"
        service.register_view(view, sigma0())
        service.register_tenant(tenant, view, documents=(hashes[HOSPITAL],))
    for j, tenant in enumerate(curator_names(cfg)):
        view = f"curated-{j}"
        service.register_view(view, curated_view())
        service.register_tenant(tenant, view, documents=ontology_hashes)
    service.register_tenant(
        "admin", None, documents=(hashes[HOSPITAL], *ontology_hashes)
    )
    return service, hashes


def generate_multidoc_traffic(
    config: MultiDocConfig | None = None,
    hashes: dict | None = None,
) -> list[TrafficRequest]:
    """The seeded mixed-document request stream.

    With ``hashes`` (from :func:`build_multidoc_service`) each request
    carries the content hash of its target document; without, requests
    carry the document *name* — callers replaying against a live service
    must translate first.
    """
    cfg = config or MultiDocConfig()
    rng = random.Random(cfg.seed + 1)
    research = research_names(cfg)
    curators = curator_names(cfg)
    onames = ontology_names(cfg)

    def doc(name: str) -> str:
        return hashes[name] if hashes is not None else name

    def ontology_pick() -> str:
        # Single-variant streams skip the draw, keeping the default
        # stream byte-stable across the variants knob's introduction.
        return onames[0] if len(onames) == 1 else rng.choice(onames)

    view_items = sorted(VIEW_QUERIES.items())
    hot_view = view_items[: max(1, len(view_items) // 3)]
    curated_items = sorted(ONTOLOGY_VIEW_QUERIES.items())
    hot_curated = curated_items[: max(1, len(curated_items) // 3)]
    admin_hospital = sorted(FIG8.items())
    admin_ontology = sorted(ONTOLOGY_SOURCE_QUERIES.items())

    requests: list[TrafficRequest] = []
    for _ in range(cfg.num_requests):
        on_ontology = rng.random() < cfg.ontology_fraction
        if rng.random() < cfg.admin_rate:
            name, query = rng.choice(
                admin_ontology if on_ontology else admin_hospital
            )
            requests.append(
                TrafficRequest(
                    "admin",
                    query,
                    name,
                    document=doc(ontology_pick() if on_ontology else HOSPITAL),
                )
            )
            continue
        if on_ontology:
            pool = (
                hot_curated
                if rng.random() < cfg.hot_fraction
                else curated_items
            )
            name, query = rng.choice(pool)
            requests.append(
                TrafficRequest(
                    rng.choice(curators),
                    query,
                    name,
                    document=doc(ontology_pick()),
                )
            )
        else:
            pool = hot_view if rng.random() < cfg.hot_fraction else view_items
            name, query = rng.choice(pool)
            requests.append(
                TrafficRequest(
                    rng.choice(research), query, name, document=doc(HOSPITAL)
                )
            )
    return requests
