"""Hot-key-skew serving workload: one Zipf-hot document behind N tenants.

The first entry of the ROADMAP scenario zoo: several hospital documents
of identical shape (shifted generator seeds, distinct content hashes)
sit behind one service, and every request draws its target document from
a Zipf distribution — rank 0 is the *hot* document that almost every
tenant hammers, the tail documents see occasional traffic.  The stream
stresses exactly the machinery a hot key stresses in production: the
document store's hit accounting, admission waves that pile many lanes
onto one document (prime composition fodder — same view, same document),
and the fleet's consistent-hash ring, which by construction routes the
hot key to ONE worker.

Everything is seeded and deterministic, mirroring
:mod:`repro.workloads.traffic` and :mod:`repro.workloads.multidoc`.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from ..views.samples import sigma0
from .hospital import HospitalConfig, generate_hospital_document
from .queries import FIG8, VIEW_QUERIES
from .traffic import TrafficRequest


@dataclass
class SkewConfig:
    """Knobs for the hot-document stream (JSON-round-trippable).

    ``zipf_s`` is the Zipf exponent over document ranks: draw weight for
    the rank-``r`` document is ``1 / (r + 1) ** zipf_s``, so ``s = 0``
    degenerates to uniform and larger ``s`` concentrates traffic on the
    rank-0 hot document (the default ``1.2`` sends roughly two thirds of
    a four-document stream there).
    """

    documents: int = 4
    patients: int = 40
    tenants: int = 4
    seed: int = 0
    num_requests: int = 64
    admin_rate: float = 0.15
    hot_fraction: float = 0.5
    zipf_s: float = 1.2

    def __post_init__(self) -> None:
        if self.documents < 1:
            raise ValueError(f"documents must be >= 1, got {self.documents}")
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SkewConfig":
        return cls(**data)


def document_names(config: SkewConfig) -> list[str]:
    """Document names by rank: ``hot``, ``warm-1``, ``warm-2``, ..."""
    return ["hot"] + [f"warm-{r}" for r in range(1, config.documents)]


def zipf_weights(config: SkewConfig) -> list[float]:
    """Unnormalised Zipf draw weights by document rank."""
    return [1.0 / (r + 1) ** config.zipf_s for r in range(config.documents)]


def build_documents(config: SkewConfig | None = None) -> dict:
    """The ranked documents by name — same shape, shifted seeds."""
    cfg = config or SkewConfig()
    return {
        name: generate_hospital_document(
            HospitalConfig(num_patients=cfg.patients, seed=cfg.seed + rank)
        )
        for rank, name in enumerate(document_names(cfg))
    }


def tenant_names(config: SkewConfig) -> list[str]:
    return [f"inst-{i}" for i in range(max(1, config.tenants))]


def build_skew_service(
    config: SkewConfig | dict | None = None,
    plan_store=None,
    document_store=None,
    pool_size: int | None = None,
    compose: bool = False,
):
    """Build the hot-document service; returns ``(service, hashes)``.

    ``hashes`` maps document names (:func:`document_names` order) to
    content hashes.  Every research tenant shares ONE registered ``σ0``
    view and may reach every document — the skew lives in the *stream*,
    not the catalog — so waves that pile onto the hot document present
    same-view lane families the composed path can fuse.
    """
    from ..serve.service import QueryService

    if isinstance(config, dict):
        config = SkewConfig.from_dict(config)
    cfg = config or SkewConfig()
    documents = build_documents(cfg)
    names = document_names(cfg)
    kwargs = {} if pool_size is None else {"pool_size": pool_size}
    service = QueryService(
        documents[names[0]],
        plan_store=plan_store,
        document_store=document_store,
        compose=compose,
        **kwargs,
    )
    hashes = {names[0]: service.default_document_hash}
    for name in names[1:]:
        hashes[name] = service.add_document(documents[name])
    all_hashes = tuple(hashes[name] for name in names)
    service.register_view("research", sigma0())
    for tenant in tenant_names(cfg):
        service.register_tenant(tenant, "research", documents=all_hashes)
    service.register_tenant("admin", None, documents=all_hashes)
    return service, hashes


def generate_skew_traffic(
    config: SkewConfig | None = None,
    hashes: dict | None = None,
) -> list[TrafficRequest]:
    """The seeded Zipf-hot request stream.

    With ``hashes`` (from :func:`build_skew_service`) each request
    carries its target document's content hash; without, the document
    *name* — callers replaying against a live service translate first.
    """
    cfg = config or SkewConfig()
    rng = random.Random(cfg.seed + 1)
    tenants = tenant_names(cfg)
    names = document_names(cfg)
    weights = zipf_weights(cfg)
    view_items = sorted(VIEW_QUERIES.items())
    hot_queries = view_items[: max(1, len(view_items) // 3)]
    admin_items = sorted(FIG8.items())

    def doc() -> str:
        name = rng.choices(names, weights=weights)[0]
        return hashes[name] if hashes is not None else name

    requests: list[TrafficRequest] = []
    for _ in range(cfg.num_requests):
        if admin_items and rng.random() < cfg.admin_rate:
            name, query = rng.choice(admin_items)
            requests.append(TrafficRequest("admin", query, name, document=doc()))
            continue
        pool = hot_queries if rng.random() < cfg.hot_fraction else view_items
        name, query = rng.choice(pool)
        requests.append(
            TrafficRequest(rng.choice(tenants), query, name, document=doc())
        )
    return requests


def document_share(requests: list[TrafficRequest]) -> dict:
    """Requests per document hash/name — the observed skew of a stream."""
    share: dict = {}
    for request in requests:
        share[request.document] = share.get(request.document, 0) + 1
    return dict(sorted(share.items(), key=lambda kv: -kv[1]))
