"""A second recursive workload: Gene-Ontology-style term hierarchies.

The paper motivates recursive DTDs with biomedical data — "the Gene
Ontology database, GO [7]" — and cites [3]: more than half of 60 analysed
real-world DTDs were recursive.  This workload provides a GO-flavoured
recursive DTD (terms with ``isa``/``partof`` sub-term relations and
annotations) plus a generator and a curator view, used by the test suite
to exercise the algorithms on a second recursion shape (a DAG-like
multi-axis recursion instead of the hospital's single parent chain).
"""

from __future__ import annotations

import random

from ..dtd.model import DTD
from ..dtd.parse import parse_dtd
from ..views.spec import ViewSpec, view_spec
from ..xtree.build import element
from ..xtree.node import Node, XMLTree

ONTOLOGY_DTD_TEXT = """
root ontology
ontology   -> term*
term       -> tname, definition, evidence*, isa*, partof*
tname      -> #PCDATA
definition -> #PCDATA
evidence   -> code, source
code       -> #PCDATA
source     -> #PCDATA
isa        -> term
partof     -> term
"""

#: Curator view: only experimentally-evidenced terms, is-a skeleton only.
CURATED_VIEW_DTD_TEXT = """
root ontology
ontology -> cterm*
cterm    -> cterm*, label*
label    -> #PCDATA
"""

CURATED_ANNOTATIONS = {
    ("ontology", "cterm"): "term[evidence/code/text() = 'EXP']",
    ("cterm", "cterm"): "isa/term[evidence/code/text() = 'EXP']",
    ("cterm", "label"): "tname",
}

EVIDENCE_CODES = ("EXP", "IEA", "ISS", "TAS")
NAME_STEMS = ("kinase", "binding", "transport", "membrane", "repair")


def ontology_dtd() -> DTD:
    """The recursive GO-flavoured DTD."""
    return parse_dtd(ONTOLOGY_DTD_TEXT)


def curated_view() -> ViewSpec:
    """Curator security view: EXP-evidenced is-a skeleton."""
    return view_spec(
        ontology_dtd(), parse_dtd(CURATED_VIEW_DTD_TEXT), CURATED_ANNOTATIONS
    )


def generate_ontology_document(
    num_terms: int = 40, seed: int = 0, max_depth: int = 4
) -> XMLTree:
    """Generate a deterministic ontology document.

    ``num_terms`` top-level terms, each with a recursive ``isa``/``partof``
    sub-hierarchy damped by depth.
    """
    rng = random.Random(seed)
    root = element("ontology")
    for _ in range(num_terms):
        root.append(_term(rng, 0, max_depth))
    return XMLTree(root)


def _term(rng: random.Random, depth: int, max_depth: int) -> Node:
    stem = rng.choice(NAME_STEMS)
    term = element(
        "term",
        element("tname", f"{stem}-{rng.randrange(10_000)}"),
        element("definition", f"the {stem} process"),
    )
    for _ in range(rng.randint(0, 2)):
        term.append(
            element(
                "evidence",
                element("code", rng.choice(EVIDENCE_CODES)),
                element("source", f"PMID:{rng.randrange(100_000)}"),
            )
        )
    if depth < max_depth:
        for axis in ("isa", "partof"):
            count = rng.randint(0, 2 - depth // 2)
            for _ in range(count):
                term.append(element(axis, _term(rng, depth + 1, max_depth)))
    return term
