"""A second recursive workload: Gene-Ontology-style term hierarchies.

The paper motivates recursive DTDs with biomedical data — "the Gene
Ontology database, GO [7]" — and cites [3]: more than half of 60 analysed
real-world DTDs were recursive.  This workload provides a GO-flavoured
recursive DTD (terms with ``isa``/``partof`` sub-term relations and
annotations) plus a generator and a curator view, used by the test suite
to exercise the algorithms on a second recursion shape (a DAG-like
multi-axis recursion instead of the hospital's single parent chain).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..dtd.model import DTD
from ..dtd.parse import parse_dtd
from ..views.spec import ViewSpec, view_spec
from ..xtree.build import element
from ..xtree.node import Node, XMLTree

ONTOLOGY_DTD_TEXT = """
root ontology
ontology   -> term*
term       -> tname, definition, evidence*, isa*, partof*
tname      -> #PCDATA
definition -> #PCDATA
evidence   -> code, source
code       -> #PCDATA
source     -> #PCDATA
isa        -> term
partof     -> term
"""

#: Curator view: only experimentally-evidenced terms, is-a skeleton only.
CURATED_VIEW_DTD_TEXT = """
root ontology
ontology -> cterm*
cterm    -> cterm*, label*
label    -> #PCDATA
"""

CURATED_ANNOTATIONS = {
    ("ontology", "cterm"): "term[evidence/code/text() = 'EXP']",
    ("cterm", "cterm"): "isa/term[evidence/code/text() = 'EXP']",
    ("cterm", "label"): "tname",
}

EVIDENCE_CODES = ("EXP", "IEA", "ISS", "TAS")
NAME_STEMS = ("kinase", "binding", "transport", "membrane", "repair")


def ontology_dtd() -> DTD:
    """The recursive GO-flavoured DTD."""
    return parse_dtd(ONTOLOGY_DTD_TEXT)


def curated_view() -> ViewSpec:
    """Curator security view: EXP-evidenced is-a skeleton."""
    return view_spec(
        ontology_dtd(), parse_dtd(CURATED_VIEW_DTD_TEXT), CURATED_ANNOTATIONS
    )


@dataclass
class OntologyConfig:
    """Knobs for the deep-recursion ontology generator.

    ``chain_depth`` is what makes this a *deep-recursion* workload rather
    than a shallow random hierarchy: every ``chain_every``-th top-level
    term anchors a guaranteed linear ``isa`` chain of exactly that many
    nested EXP-evidenced terms, so the document's recursion depth is a
    structural promise, not a roll of the dice — the Kleene-star queries
    (``(cterm/cterm)*`` and friends) have real descent work to do and the
    curated view exposes the full chain.
    """

    num_terms: int = 40
    seed: int = 0
    max_depth: int = 4
    chain_depth: int = 12
    chain_every: int = 8


def generate_ontology_document(
    num_terms: int = 40,
    seed: int = 0,
    max_depth: int = 4,
    config: OntologyConfig | None = None,
) -> XMLTree:
    """Generate a deterministic ontology document.

    ``num_terms`` top-level terms, each with a recursive ``isa``/``partof``
    sub-hierarchy damped by depth.  Pass an :class:`OntologyConfig` to
    also plant the guaranteed deep ``isa`` chains (the deep-recursion
    regime); the bare keyword form keeps the legacy shallow shape.
    """
    cfg = config or OntologyConfig(
        num_terms=num_terms, seed=seed, max_depth=max_depth, chain_depth=0
    )
    rng = random.Random(cfg.seed)
    root = element("ontology")
    for index in range(cfg.num_terms):
        if (
            cfg.chain_depth > 0
            and cfg.chain_every > 0
            and index % cfg.chain_every == 0
        ):
            root.append(_chain_term(rng, cfg.chain_depth))
        else:
            root.append(_term(rng, 0, cfg.max_depth))
    return XMLTree(root)


def _chain_term(rng: random.Random, depth: int) -> Node:
    """A linear ``isa`` chain of ``depth`` EXP-evidenced terms.

    Every link carries EXP evidence so the whole chain survives the
    curated view's filter — the view sees an unbroken ``cterm`` spine of
    the same depth.
    """
    term = element(
        "term",
        element("tname", f"chain-{rng.randrange(10_000)}"),
        element("definition", "a deep lineage"),
        element(
            "evidence",
            element("code", "EXP"),
            element("source", f"PMID:{rng.randrange(100_000)}"),
        ),
    )
    if depth > 1:
        term.append(element("isa", _chain_term(rng, depth - 1)))
    return term


def _term(rng: random.Random, depth: int, max_depth: int) -> Node:
    stem = rng.choice(NAME_STEMS)
    term = element(
        "term",
        element("tname", f"{stem}-{rng.randrange(10_000)}"),
        element("definition", f"the {stem} process"),
    )
    for _ in range(rng.randint(0, 2)):
        term.append(
            element(
                "evidence",
                element("code", rng.choice(EVIDENCE_CODES)),
                element("source", f"PMID:{rng.randrange(100_000)}"),
            )
        )
    if depth < max_depth:
        for axis in ("isa", "partof"):
            count = rng.randint(0, 2 - depth // 2)
            for _ in range(count):
                term.append(element(axis, _term(rng, depth + 1, max_depth)))
    return term


# ----------------------------------------------------------------------
# Query families (the ontology side of the multi-document workload)
# ----------------------------------------------------------------------

#: Curator-view queries (over :func:`curated_view`'s DTD): the recursive
#: ``cterm`` spine makes these exercise Kleene descent through the deep
#: ``isa`` chains the generator plants.
ONTOLOGY_VIEW_QUERIES = {
    "top-terms": "cterm/label",
    "all-labels": "//label",
    "grand-terms": "cterm/cterm/label",
    "spine": "(cterm/cterm)*/label",
    "deep-terms": "cterm//cterm[not(cterm)]/label",
}

#: Direct source queries for the trusted tenant (over the raw DTD).
ONTOLOGY_SOURCE_QUERIES = {
    "exp-terms": "//term[evidence/code/text() = 'EXP']/tname",
    "isa-leaves": "//isa/term[not(isa)]/tname",
    "partof": "term/partof/term/tname",
}
