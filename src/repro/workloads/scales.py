"""Document size series for the scaling experiments (Fig. 8/9 x-axes).

The paper uses ten documents, 7–70 MB in 7 MB steps (≈10k patients per
step).  Pure Python evaluates roughly two orders of magnitude fewer nodes
per second than the paper's engines, so the default series is node-scaled:
ten steps of ``PATIENTS_PER_STEP`` patients each.  Set the environment
variable ``REPRO_SCALE`` (a float multiplier) to grow or shrink every step,
e.g. ``REPRO_SCALE=10`` for a series within 10× of the paper's smallest
document.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..xtree.node import XMLTree
from .hospital import HospitalConfig, generate_hospital_document

#: Patients per series step at scale 1.0.
PATIENTS_PER_STEP = 60

#: Number of steps in the full series (like the paper's 10 documents).
FULL_SERIES_STEPS = 10


def scale_factor() -> float:
    """The ``REPRO_SCALE`` multiplier (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1.0")
    try:
        value = float(raw)
    except ValueError:
        return 1.0
    return max(value, 0.01)


@dataclass
class SeriesStep:
    """One document of the size series."""

    label: str
    num_patients: int
    tree: XMLTree

    @property
    def element_count(self) -> int:
        return self.tree.element_count


def document_series(
    steps: int | None = None,
    seed: int = 2007,
    heart_disease_rate: float = 0.25,
) -> list[SeriesStep]:
    """Generate the document size series (cached per-process by callers).

    Step ``k`` holds ``k × PATIENTS_PER_STEP × REPRO_SCALE`` patients —
    linear growth, mirroring the paper's 7 MB increments.
    """
    count = steps if steps is not None else FULL_SERIES_STEPS
    factor = scale_factor()
    series: list[SeriesStep] = []
    for k in range(1, count + 1):
        patients = max(1, int(k * PATIENTS_PER_STEP * factor))
        config = HospitalConfig(
            num_patients=patients,
            seed=seed + k,
            heart_disease_rate=heart_disease_rate,
        )
        tree = generate_hospital_document(config)
        series.append(SeriesStep(label=f"step-{k}", num_patients=patients, tree=tree))
    return series
