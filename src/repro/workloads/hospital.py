"""The experimental hospital workload of Section 7 (ToXGene substitute).

The paper generates documents conforming to the recursive hospital DTD of
Fig. 1(a) with ToXGene: 7–70 MB in 7 MB increments, each increment roughly
the medical history of 10,000 patients; maximal tree depth 13; mostly
element nodes with short text values (selectivity knobs, minimal size
impact).  The smallest document has 303,714 element nodes vs. 151,187 text
nodes (≈2:1).

This module reproduces the workload *shape* at Python-friendly scale: a
seeded generator parameterised by the number of top-level patients, with
recursive parent chains (depth-limited so the maximal depth stays around
the paper's 13), sibling branches, visits with test/medication treatments,
and controllable diagnosis selectivity.  Text values come from small pools
so queries can be selective without inflating document size — matching the
paper's design.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..xtree.build import element
from ..xtree.node import Node, XMLTree

#: Diagnosis pool; index 0 is the paper's selective value.
DIAGNOSES = ("heart disease", "flu", "lung disease", "brain disease", "asthma")
TESTS = ("blood test", "x-ray", "biopsy")
SPECIALTIES = ("cardiology", "oncology", "neurology", "general")
MEDICATION_TYPES = ("tablet", "injection", "infusion")
FIRST_NAMES = ("ann", "bob", "cat", "dan", "eve", "fay", "gus", "hal")
CITIES = ("edinburgh", "istanbul", "hasselt", "murray hill")


@dataclass
class HospitalConfig:
    """Workload knobs (defaults follow the paper's proportions).

    Attributes:
        num_patients: Top-level in-patients (the paper's 10k-per-7MB knob).
        seed: RNG seed; generation is deterministic given the config.
        heart_disease_rate: Fraction of visits whose medication diagnosis is
            "heart disease" (query selectivity).
        medication_rate: Fraction of treatments that are medications (the
            rest are tests).
        parent_chain_decay: Probability of extending the parent chain one
            more generation (geometric; caps at ``max_generations``).
        sibling_rate: Expected siblings per patient description.
        max_generations: Hard bound on ancestor recursion (keeps the tree
            depth near the paper's 13).
        departments: Number of hospital departments.
    """

    num_patients: int = 100
    seed: int = 0
    heart_disease_rate: float = 0.25
    medication_rate: float = 0.6
    parent_chain_decay: float = 0.55
    sibling_rate: float = 0.4
    max_generations: int = 3
    departments: int = 4


def generate_hospital_document(config: HospitalConfig | None = None) -> XMLTree:
    """Generate one hospital document conforming to Fig. 1(a)'s DTD."""
    cfg = config or HospitalConfig()
    rng = random.Random(cfg.seed)
    hospital = element("hospital")
    departments = [
        element("department", element("name", f"dept-{i}"))
        for i in range(max(1, cfg.departments))
    ]
    for dept in departments:
        hospital.append(dept)
    for i in range(cfg.num_patients):
        dept = departments[i % len(departments)]
        dept.append(_patient(rng, cfg, generation=0))
    return XMLTree(hospital)


def _patient(rng: random.Random, cfg: HospitalConfig, generation: int) -> Node:
    patient = element(
        "patient",
        element("pname", rng.choice(FIRST_NAMES) + f"-{rng.randrange(10_000)}"),
        _address(rng),
    )
    # Ancestors carry fewer visits than in-patients, like real histories.
    visit_budget = max(1, 2 - generation)
    for _ in range(rng.randint(1, visit_budget + 1)):
        patient.append(_visit(rng, cfg))
    if generation < cfg.max_generations:
        chain = cfg.parent_chain_decay ** (generation + 1)
        while rng.random() < chain:
            patient.append(
                element("parent", _patient(rng, cfg, generation + 1))
            )
            chain *= 0.5
        if rng.random() < cfg.sibling_rate / (generation + 1):
            patient.append(
                element("sibling", _patient(rng, cfg, cfg.max_generations))
            )
    return patient


def _address(rng: random.Random) -> Node:
    return element(
        "address",
        element("street", f"{rng.randrange(200)} high st"),
        element("city", rng.choice(CITIES)),
        element("zip", f"{rng.randrange(99999):05d}"),
    )


def _visit(rng: random.Random, cfg: HospitalConfig) -> Node:
    if rng.random() < cfg.medication_rate:
        if rng.random() < cfg.heart_disease_rate:
            diagnosis = DIAGNOSES[0]
        else:
            diagnosis = rng.choice(DIAGNOSES[1:])
        treatment = element(
            "treatment",
            element(
                "medication",
                element("type", rng.choice(MEDICATION_TYPES)),
                element("diagnosis", diagnosis),
            ),
        )
    else:
        treatment = element("treatment", element("test", rng.choice(TESTS)))
    return element(
        "visit",
        element("date", f"2006-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}"),
        treatment,
        element(
            "doctor",
            element("dname", rng.choice(FIRST_NAMES)),
            element("specialty", rng.choice(SPECIALTIES)),
        ),
    )
