"""Malicious-tenant workload: rewrite bombs and cache-poisoning attempts.

The robustness counterpart of the scenario zoo's friendly streams.  One
tenant (``mallory``) interleaves two attack families with the legitimate
hospital traffic the other tenants send:

* **Rewrite bombs** — the nested-star query family of
  ``benchmarks/test_rewrite_blowup.py`` (``(*/*)*`` doubled per nesting
  level), deepened past the compile budget.  The MFA rewrite itself is
  linear in ``|Q|`` (Theorem 5.1) — the blowup is in the *query*, whose
  AST doubles per level — so the defense is the
  :class:`repro.guard.CompileBudget` AST check right after
  parse+normalize: each bomb costs one linear parse and is rejected with
  the structured ``query-too-complex`` kind in bounded wall time.
* **Cache poisoning** — replacing a registered view with a same-name,
  different-content spec and replaying a canary query.  Plan cache and
  store keys carry the view's content *fingerprint*, so a plan compiled
  under one registration can never be served under the other;
  :func:`poison_attempt` runs the round trip and returns the canary
  counts that prove it.

Everything is seeded and deterministic, mirroring
:mod:`repro.workloads.skew` and :mod:`repro.workloads.multidoc`.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from ..views.samples import SIGMA0_ANNOTATIONS, sigma0
from .hospital import HospitalConfig, generate_hospital_document
from .queries import FIG8, VIEW_QUERIES
from .traffic import TrafficRequest

#: Traffic name prefix marking requests that MUST be rejected
#: ``query-too-complex`` (callers count them against the rejection kind).
BOMB_PREFIX = "bomb"

#: The canary query replayed around a poisoning attempt (nonzero under
#: ``σ0``, empty under the variant — the counts discriminate the specs).
CANARY_QUERY = "patient/record/diagnosis"


@dataclass
class AdversarialConfig:
    """Knobs for the malicious stream (JSON-round-trippable).

    ``bomb_depth`` is the nesting level of the *hostile* family members;
    the default sits safely past the default
    :class:`repro.guard.CompileBudget` AST ceiling while the query
    string stays small enough that the rejection is visibly cheap.
    ``bomb_rate`` is the fraction of the stream mallory fills with them.
    """

    patients: int = 20
    tenants: int = 3
    seed: int = 0
    num_requests: int = 48
    bomb_rate: float = 0.25
    bomb_depth: int = 12
    admin_rate: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.bomb_rate <= 1.0:
            raise ValueError(f"bomb_rate must be in [0, 1], got {self.bomb_rate}")
        if self.bomb_depth < 1:
            raise ValueError(f"bomb_depth must be >= 1, got {self.bomb_depth}")

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "AdversarialConfig":
        return cls(**data)


def bomb_family(depth: int) -> list[str]:
    """The nested-star family, doubling per level: ``(*/*)*``, ....

    ``bomb_family(3)`` is exactly the ``FAMILY`` of
    ``benchmarks/test_rewrite_blowup.py``; deeper members double the AST
    (and the query text) per level, so a member past the budget's
    ``max_ast_nodes`` exists at every budget setting.
    """
    member = "(*/*)*"
    family = [member]
    for _ in range(depth - 1):
        member = f"({member}/{member})*"
        family.append(member)
    return family


def sigma0_variant() -> "object":
    """A same-shape, different-content sibling of ``σ0``.

    Identical element structure (same view DTD) but a different Q1
    membership predicate — so it carries a different content
    fingerprint, which is all the plan tiers key on.
    """
    from ..dtd.samples import hospital_dtd, hospital_view_dtd
    from ..views.spec import view_spec

    annotations = dict(SIGMA0_ANNOTATIONS)
    annotations[("hospital", "patient")] = (
        "department/patient"
        "[visit/treatment/medication/diagnosis/text() = 'diabetes']"
    )
    return view_spec(hospital_dtd(), hospital_view_dtd(), annotations)


def tenant_names(config: AdversarialConfig) -> list[str]:
    return [f"inst-{i}" for i in range(max(1, config.tenants))]


def build_adversarial_service(
    config: AdversarialConfig | dict | None = None,
    plan_store=None,
    document_store=None,
    pool_size: int | None = None,
    compose: bool = False,
):
    """Build the service under attack; returns ``(service, hashes)``.

    The honest research tenants and ``mallory`` are bound to the SAME
    ``research`` view — mallory is a view-restricted attacker whose only
    levers are the queries it sends, which is the threat model the
    compile budget defends.  ``admin`` keeps trusted direct access.
    """
    from ..serve.service import QueryService

    if isinstance(config, dict):
        config = AdversarialConfig.from_dict(config)
    cfg = config or AdversarialConfig()
    document = generate_hospital_document(
        HospitalConfig(num_patients=cfg.patients, seed=cfg.seed)
    )
    kwargs = {} if pool_size is None else {"pool_size": pool_size}
    service = QueryService(
        document,
        plan_store=plan_store,
        document_store=document_store,
        compose=compose,
        **kwargs,
    )
    hashes = {"hospital": service.default_document_hash}
    service.register_view("research", sigma0())
    for tenant in tenant_names(cfg):
        service.register_tenant(tenant, "research")
    service.register_tenant("mallory", "research")
    service.register_tenant("admin", None)
    return service, hashes


def generate_adversarial_traffic(
    config: AdversarialConfig | None = None,
    hashes: dict | None = None,
) -> list[TrafficRequest]:
    """The seeded hostile stream: legit queries salted with bombs.

    Bomb requests carry names prefixed :data:`BOMB_PREFIX` so replay
    harnesses know exactly which requests must come back rejected
    ``query-too-complex`` — every other request must be served.
    """
    cfg = config or AdversarialConfig()
    rng = random.Random(cfg.seed + 7)
    tenants = tenant_names(cfg)
    view_items = sorted(VIEW_QUERIES.items())
    admin_items = sorted(FIG8.items())
    bombs = bomb_family(cfg.bomb_depth)
    # Only members past the budget are hostile; the shallow prefix of
    # the family compiles fine and stays out of the bomb quota.
    hostile = bombs[-1]
    document = hashes.get("hospital") if hashes is not None else None
    requests: list[TrafficRequest] = []
    for i in range(cfg.num_requests):
        if rng.random() < cfg.bomb_rate:
            requests.append(
                TrafficRequest(
                    "mallory", hostile, f"{BOMB_PREFIX}-{i}", document=document
                )
            )
            continue
        if admin_items and rng.random() < cfg.admin_rate:
            name, query = rng.choice(admin_items)
            requests.append(
                TrafficRequest("admin", query, name, document=document)
            )
            continue
        name, query = rng.choice(view_items)
        requests.append(
            TrafficRequest(rng.choice(tenants), query, name, document=document)
        )
    return requests


def is_bomb(request: TrafficRequest) -> bool:
    """Was this request one of the stream's rewrite bombs?"""
    return request.name.startswith(BOMB_PREFIX)


def poison_attempt(service, tenant: str = "inst-0") -> dict:
    """One same-name/different-content view swap around a canary query.

    Re-registers ``research`` with :func:`sigma0_variant`, replays the
    canary, restores the original spec and replays again.  Because every
    plan tier keys on the view's content fingerprint, the poisoned
    registration can never be served a plan compiled for the original
    (or vice versa): ``before == after`` even though the poisoned
    answer in between may differ.  Returns the three canary counts.
    """
    before = len(service.submit(tenant, CANARY_QUERY).nodes)
    service.register_view("research", sigma0_variant())
    poisoned = len(service.submit(tenant, CANARY_QUERY).nodes)
    service.register_view("research", sigma0())
    after = len(service.submit(tenant, CANARY_QUERY).nodes)
    return {
        "before": before,
        "poisoned": poisoned,
        "after": after,
        "isolated": before == after,
    }
