"""Experimental workloads: documents, query families, size series."""

from .hospital import (
    DIAGNOSES,
    HospitalConfig,
    generate_hospital_document,
)
from .ontology import (
    curated_view,
    generate_ontology_document,
    ontology_dtd,
)
from .queries import (
    EXAMPLE_1_1,
    EXAMPLE_2_1,
    EXAMPLE_3_1_REWRITTEN,
    EXAMPLE_4_1,
    FIG8,
    FIG8A,
    FIG8B,
    FIG8C,
    FIG9,
    FIG9A,
    FIG9B,
    FIG9C,
    VIEW_QUERIES,
    parse_all,
)
from .scales import SeriesStep, document_series, scale_factor
from .traffic import (
    TrafficConfig,
    TrafficRequest,
    generate_traffic,
    register_tenants,
    tenant_names,
    waves,
)

__all__ = [
    "TrafficConfig",
    "TrafficRequest",
    "generate_traffic",
    "register_tenants",
    "tenant_names",
    "waves",
    "HospitalConfig",
    "generate_hospital_document",
    "ontology_dtd",
    "curated_view",
    "generate_ontology_document",
    "DIAGNOSES",
    "EXAMPLE_1_1",
    "EXAMPLE_2_1",
    "EXAMPLE_3_1_REWRITTEN",
    "EXAMPLE_4_1",
    "FIG8",
    "FIG8A",
    "FIG8B",
    "FIG8C",
    "FIG9",
    "FIG9A",
    "FIG9B",
    "FIG9C",
    "VIEW_QUERIES",
    "parse_all",
    "document_series",
    "SeriesStep",
    "scale_factor",
]
