"""DTD-directed random document generator (ToXGene substitute).

The paper generates its experimental documents with ToXGene [1], a
template-based XML generator, against the recursive hospital DTD of
Fig. 1(a).  ToXGene is not available offline, so this module implements the
same capability: a seeded recursive-descent generator that

* conforms to any :class:`~repro.dtd.model.DTD` in the paper's normal form,
* damps recursion with a depth budget so recursive DTDs terminate,
* draws starred-item counts from a configurable distribution, and
* fills PCDATA from per-label text pools (to control query selectivity).

`repro.workloads.hospital` layers the paper's concrete hospital workload on
top of this generic generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence as Seq

from ..xtree.node import Node, TEXT_LABEL, XMLTree
from .model import Choice, DTD, EmptyContent, Sequence, StrContent

TextPool = Seq[str]
TextProvider = Callable[[str, random.Random], str]


@dataclass
class GeneratorConfig:
    """Knobs of the DTD-directed generator.

    Attributes:
        seed: RNG seed — generation is fully deterministic given the seed.
        star_mean: Mean number of repetitions for a ``B*`` item.
        max_depth: Hard depth budget; below ``soft_depth`` recursive starred
            items shrink geometrically and at ``max_depth`` they produce 0
            children (choices pick non-recursive options when possible).
        soft_depth: Depth at which recursion damping starts.
        text_pools: Per-label pools of PCDATA values; labels without a pool
            fall back to ``default_text``.
        text_provider: Optional callable overriding pool lookup entirely.
        default_text: Fallback PCDATA value.
        star_overrides: Per ``(parent, child)`` mean repetition overrides.
    """

    seed: int = 0
    star_mean: float = 2.0
    max_depth: int = 30
    soft_depth: int = 8
    text_pools: Mapping[str, TextPool] = field(default_factory=dict)
    text_provider: TextProvider | None = None
    default_text: str = "v"
    star_overrides: Mapping[tuple[str, str], float] = field(default_factory=dict)


def generate_document(dtd: DTD, config: GeneratorConfig | None = None) -> XMLTree:
    """Generate one random document conforming to ``dtd``."""
    cfg = config or GeneratorConfig()
    rng = random.Random(cfg.seed)
    recursive = _recursive_types(dtd)
    root = _generate_node(dtd, dtd.root, 0, rng, cfg, recursive)
    return XMLTree(root)


def _recursive_types(dtd: DTD) -> set[str]:
    # Local import to avoid a cycle at module import time.
    from .graph import recursive_types

    return recursive_types(dtd)


def _text_for(label: str, rng: random.Random, cfg: GeneratorConfig) -> str:
    if cfg.text_provider is not None:
        return cfg.text_provider(label, rng)
    pool = cfg.text_pools.get(label)
    if pool:
        return pool[rng.randrange(len(pool))]
    return cfg.default_text


def _star_count(
    parent: str,
    child: str,
    depth: int,
    rng: random.Random,
    cfg: GeneratorConfig,
    recursive: set[str],
) -> int:
    mean = cfg.star_overrides.get((parent, child), cfg.star_mean)
    if child in recursive:
        if depth >= cfg.max_depth:
            return 0
        if depth > cfg.soft_depth:
            mean = mean * (0.5 ** (depth - cfg.soft_depth))
    if mean <= 0:
        return 0
    # Geometric-ish: small variance around the mean, never negative.
    lo = max(0, int(mean) - 1)
    hi = int(mean) + 1
    count = rng.randint(lo, hi)
    if rng.random() < mean - int(mean):
        count += 1
    return count


def _generate_node(
    dtd: DTD,
    label: str,
    depth: int,
    rng: random.Random,
    cfg: GeneratorConfig,
    recursive: set[str],
) -> Node:
    if depth > cfg.max_depth + 64:
        # A cycle of mandatory (non-starred, non-choice-avoidable) edges has
        # no finite documents at all; fail loudly instead of recursing forever.
        from ..errors import DTDError

        raise DTDError(
            f"DTD recursion through mandatory edges cannot terminate at {label!r}"
        )
    node = Node(label)
    content = dtd.production(label)
    if isinstance(content, StrContent):
        node.append(Node(TEXT_LABEL, _text_for(label, rng, cfg)))
        return node
    if isinstance(content, EmptyContent):
        return node
    if isinstance(content, Choice):
        options = list(content.options)
        if depth >= cfg.max_depth:
            safe = [opt for opt in options if opt not in recursive]
            if safe:
                options = safe
        choice = options[rng.randrange(len(options))]
        node.append(_generate_node(dtd, choice, depth + 1, rng, cfg, recursive))
        return node
    assert isinstance(content, Sequence)
    for item in content.items:
        if item.starred:
            count = _star_count(label, item.label, depth, rng, cfg, recursive)
            for _ in range(count):
                node.append(
                    _generate_node(dtd, item.label, depth + 1, rng, cfg, recursive)
                )
        else:
            node.append(
                _generate_node(dtd, item.label, depth + 1, rng, cfg, recursive)
            )
    return node
