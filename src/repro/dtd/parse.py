"""Textual syntax for DTDs in the paper's normal form.

The syntax mirrors how the paper writes productions (Fig. 1(c))::

    root hospital
    hospital   -> department*
    department -> name, patient*
    patient    -> pname, address, visit*, parent*, sibling*
    treatment  -> test + medication
    pname      -> #PCDATA
    empty      -> EMPTY

Rules: the first non-comment line declares the root; each following line is
``label -> production``; ``#`` starts a comment; productions are a comma
sequence of ``B``/``B*`` items, a ``+`` disjunction, ``#PCDATA``, or
``EMPTY``.
"""

from __future__ import annotations

import re

from ..errors import DTDParseError
from .model import Choice, Content, DTD, EmptyContent, SeqItem, Sequence, StrContent

_NAME = re.compile(r"^[A-Za-z_][\w.\-]*$")


def parse_dtd(source: str) -> DTD:
    """Parse the textual DTD syntax into a :class:`DTD`.

    Raises:
        DTDParseError: on any syntax error (missing root, bad names,
            mixing ``,`` and ``+`` in one production, ...).
    """
    root: str | None = None
    productions: dict[str, Content] = {}
    comment = re.compile(r"#(?!PCDATA)")
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = comment.split(raw, 1)[0].strip()
        if not line:
            continue
        if root is None:
            parts = line.split()
            if len(parts) != 2 or parts[0] != "root":
                raise DTDParseError(
                    f"line {lineno}: expected 'root <name>' first, got {line!r}"
                )
            root = parts[1]
            continue
        if "->" not in line:
            raise DTDParseError(f"line {lineno}: expected 'label -> production'")
        left, right = line.split("->", 1)
        label = left.strip()
        if not _NAME.match(label):
            raise DTDParseError(f"line {lineno}: bad element type name {label!r}")
        if label in productions:
            raise DTDParseError(f"line {lineno}: duplicate production for {label!r}")
        productions[label] = _parse_production(right.strip(), lineno)
    if root is None:
        raise DTDParseError("empty DTD: no 'root <name>' declaration")
    return DTD(root, productions)


def _parse_production(text: str, lineno: int) -> Content:
    if text == "#PCDATA":
        return StrContent()
    if text == "EMPTY" or text == "":
        return EmptyContent()
    if "+" in text and "," in text:
        raise DTDParseError(
            f"line {lineno}: cannot mix ',' and '+' in one production (normal form)"
        )
    if "+" in text:
        options = tuple(part.strip() for part in text.split("+"))
        for opt in options:
            if not _NAME.match(opt):
                raise DTDParseError(f"line {lineno}: bad choice option {opt!r}")
        return Choice(options)
    items: list[SeqItem] = []
    for part in text.split(","):
        part = part.strip()
        starred = part.endswith("*")
        name = part[:-1].strip() if starred else part
        if not _NAME.match(name):
            raise DTDParseError(f"line {lineno}: bad sequence item {part!r}")
        items.append(SeqItem(name, starred))
    return Sequence(tuple(items))
