"""DTD model, parser, graph analysis, validation and document generation."""

from .generate import GeneratorConfig, generate_document
from .graph import adjacency, alphabet, is_recursive, reachable_types, recursive_types
from .model import (
    Choice,
    Content,
    DTD,
    EmptyContent,
    SeqItem,
    Sequence,
    StrContent,
    dtd_from_mapping,
)
from .normalize import NOTHING, normalize_dtd, parse_content_model
from .parse import parse_dtd
from .samples import hospital_dtd, hospital_view_dtd
from .validate import conforms, validate

__all__ = [
    "DTD",
    "Content",
    "StrContent",
    "EmptyContent",
    "Sequence",
    "SeqItem",
    "Choice",
    "dtd_from_mapping",
    "parse_dtd",
    "normalize_dtd",
    "parse_content_model",
    "NOTHING",
    "adjacency",
    "alphabet",
    "is_recursive",
    "recursive_types",
    "reachable_types",
    "validate",
    "conforms",
    "GeneratorConfig",
    "generate_document",
    "hospital_dtd",
    "hospital_view_dtd",
]
