"""The paper's running example: hospital document DTD and view DTD (Fig. 1).

``hospital_dtd()`` is the document DTD ``D`` of Fig. 1(a): departments with
in-patients, visits with treatments (a test or a medication with diagnosis),
treating doctors, and the *recursive* family history via ``parent`` and
``sibling`` which share the full ``patient`` description.

``hospital_view_dtd()`` is the view DTD ``D_V`` of Fig. 1(b) used by the
research-institute security view of Example 2.2: heart-disease patients,
their (recursive) parent hierarchy, and per-visit records that are either
``empty`` (the visit was a test, hidden from the institute) or a
``diagnosis``.
"""

from __future__ import annotations

from .model import DTD
from .parse import parse_dtd

HOSPITAL_DTD_TEXT = """
root hospital
hospital   -> department*
department -> name, patient*
name       -> #PCDATA
patient    -> pname, address, visit*, parent*, sibling*
pname      -> #PCDATA
address    -> street, city, zip
street     -> #PCDATA
city       -> #PCDATA
zip        -> #PCDATA
visit      -> date, treatment, doctor
date       -> #PCDATA
treatment  -> test + medication
test       -> #PCDATA
medication -> type, diagnosis
type       -> #PCDATA
diagnosis  -> #PCDATA
doctor     -> dname, specialty
dname      -> #PCDATA
specialty  -> #PCDATA
parent     -> patient
sibling    -> patient
"""

HOSPITAL_VIEW_DTD_TEXT = """
root hospital
hospital  -> patient*
patient   -> parent*, record*
parent    -> patient
record    -> empty + diagnosis
empty     -> EMPTY
diagnosis -> #PCDATA
"""


def hospital_dtd() -> DTD:
    """The document DTD ``D`` of Fig. 1(a) (recursive)."""
    return parse_dtd(HOSPITAL_DTD_TEXT)


def hospital_view_dtd() -> DTD:
    """The view DTD ``D_V`` of Fig. 1(b) (recursive)."""
    return parse_dtd(HOSPITAL_VIEW_DTD_TEXT)
