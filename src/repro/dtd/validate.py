"""Validate XML trees against DTDs in the paper's normal form.

Used in tests to check (a) generated documents conform to the document DTD
and (b) materialised views conform to the view DTD — the well-formedness
contract of the view mapping ``σ : D → D_V`` (Section 2.3).
"""

from __future__ import annotations

from ..errors import ValidationError
from ..xtree.node import Node, XMLTree
from .model import Choice, DTD, EmptyContent, Sequence, StrContent


def validate(tree: XMLTree, dtd: DTD, strict_sequences: bool = True) -> None:
    """Check ``tree`` conforms to ``dtd``; raise :class:`ValidationError` if not.

    Args:
        tree: The document to check.
        dtd: The DTD to check against.
        strict_sequences: When ``True``, sequence productions must match the
            child list exactly in order; when ``False``, order between
            different item groups is still required but empty star groups
            may be freely interleaved (lenient mode used for views whose
            annotations can produce zero nodes for a non-starred child).
    """
    if tree.root.label != dtd.root:
        raise ValidationError(
            f"root is <{tree.root.label}>, DTD expects <{dtd.root}>"
        )
    stack = [tree.root]
    while stack:
        node = stack.pop()
        _validate_node(node, dtd, strict_sequences)
        stack.extend(node.element_children())


def conforms(tree: XMLTree, dtd: DTD, strict_sequences: bool = True) -> bool:
    """Boolean form of :func:`validate`."""
    try:
        validate(tree, dtd, strict_sequences)
    except ValidationError:
        return False
    return True


def _validate_node(node: Node, dtd: DTD, strict: bool) -> None:
    content = dtd.production(node.label)
    children = node.element_children()
    if isinstance(content, StrContent):
        if children:
            raise ValidationError(
                f"<{node.label}> must hold only PCDATA, found <{children[0].label}>"
            )
        return
    if isinstance(content, EmptyContent):
        if node.children:
            raise ValidationError(f"<{node.label}> must be empty")
        return
    if any(child.is_text for child in node.children):
        raise ValidationError(f"unexpected PCDATA inside <{node.label}>")
    if isinstance(content, Choice):
        if len(children) != 1:
            raise ValidationError(
                f"<{node.label}> must have exactly one child of "
                f"{'/'.join(content.options)}, found {len(children)}"
            )
        if children[0].label not in content.options:
            raise ValidationError(
                f"<{node.label}> child <{children[0].label}> not among "
                f"{'/'.join(content.options)}"
            )
        return
    assert isinstance(content, Sequence)
    _match_sequence(node, children, content, strict)


def _match_sequence(
    node: Node, children: list[Node], content: Sequence, strict: bool
) -> None:
    pos = 0
    for item in content.items:
        if item.starred:
            while pos < len(children) and children[pos].label == item.label:
                pos += 1
        else:
            if pos < len(children) and children[pos].label == item.label:
                pos += 1
            elif strict:
                found = children[pos].label if pos < len(children) else "nothing"
                raise ValidationError(
                    f"<{node.label}>: expected <{item.label}>, found {found}"
                )
    if pos != len(children):
        raise ValidationError(
            f"<{node.label}>: unexpected trailing child <{children[pos].label}>"
        )
