"""DTD graph analysis: recursion, reachability, alphabets.

A DTD is *recursive* iff its graph (types as vertices, parent/child edges)
is cyclic (Section 2.2).  Recursion in the view DTD is exactly what makes
XPath non-closed under rewriting (Theorem 3.1), so these predicates drive
both the rewriting algorithms and the test suite.
"""

from __future__ import annotations

from ..errors import DTDError
from .model import DTD


def adjacency(dtd: DTD) -> dict[str, set[str]]:
    """Child-type adjacency of the DTD graph."""
    adj: dict[str, set[str]] = {label: set() for label in dtd.productions}
    for parent, child in dtd.edges():
        adj[parent].add(child)
    return adj


def is_recursive(dtd: DTD) -> bool:
    """Whether the DTD graph has a cycle (the DTD is recursively defined)."""
    return bool(recursive_types(dtd))


def recursive_types(dtd: DTD) -> set[str]:
    """Element types that lie on some cycle of the DTD graph.

    Computed via Tarjan-style strongly connected components: a type is
    recursive iff its SCC has more than one member or it has a self-loop.
    """
    adj = adjacency(dtd)
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    result: set[str] = set()

    def strongconnect(start: str) -> None:
        # Iterative Tarjan to survive deep DTD graphs.
        work = [(start, iter(sorted(adj[start])))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adj[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    result.update(component)
                elif component[0] in adj[component[0]]:
                    result.add(component[0])

    for label in dtd.productions:
        if label not in index:
            strongconnect(label)
    return result


def reachable_types(dtd: DTD, start: str | None = None) -> set[str]:
    """Types reachable from ``start`` (default: the root) in the DTD graph."""
    adj = adjacency(dtd)
    origin = dtd.root if start is None else start
    if origin not in adj:
        raise DTDError(f"unknown element type {origin!r}")
    seen = {origin}
    frontier = [origin]
    while frontier:
        label = frontier.pop()
        for child in adj[label]:
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen


def alphabet(dtd: DTD) -> set[str]:
    """All element type names — the label alphabet ``⋃ Ele``.

    This is the alphabet over which ``//`` desugars to ``(⋃ Ele)*``
    (Section 2.1).
    """
    return set(dtd.productions)
