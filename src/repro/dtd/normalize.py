"""Normalisation of general DTD content models to the paper's normal form.

Section 2.2: *"This form of DTD's does not lose generality since any DTD
can be converted to a DTD of this form by using new element types."*  This
module implements that conversion for general regular-expression content
models::

    model := alt
    alt   := cat ('|' cat)*
    cat   := term (',' term)*
    term  := atom ('*' | '+' | '?')?
    atom  := NAME | '(' alt ')' | '#PCDATA' | 'EMPTY'

The normal form only knows ``str``, ``ε``, concatenations of ``B``/``B*``
and disjunctions of plain types, so the conversion *introduces fresh
element types* that also appear in conforming documents:

* a nested group or a non-trivial disjunction alternative becomes a fresh
  wrapper type holding the group's content;
* ``B+`` becomes ``B, B*``;
* ``B?`` becomes a fresh choice type ``B-opt -> B + nothing`` where
  ``nothing`` is a shared empty marker type.

Documents of the original DTD correspond one-to-one to documents of the
normalised DTD with the wrapper/marker elements inserted — the usual
normal-form encoding.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..errors import DTDParseError
from .model import Choice, Content, DTD, EmptyContent, SeqItem, Sequence, StrContent

_NAME = re.compile(r"[A-Za-z_][\w.\-]*")

#: Name of the shared empty-marker type introduced for ``?`` encodings.
NOTHING = "nothing"


# ----------------------------------------------------------------------
# General content-model AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RName:
    name: str


@dataclass(frozen=True)
class RCat:
    items: tuple["RModel", ...]


@dataclass(frozen=True)
class RAlt:
    options: tuple["RModel", ...]


@dataclass(frozen=True)
class RRepeat:
    inner: "RModel"
    op: str  # '*', '+', '?'


@dataclass(frozen=True)
class RStr:
    pass


@dataclass(frozen=True)
class REmpty:
    pass


RModel = RName | RCat | RAlt | RRepeat | RStr | REmpty


# ----------------------------------------------------------------------
# Parsing the general syntax
# ----------------------------------------------------------------------
class _ModelParser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self._skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def parse(self) -> RModel:
        model = self.alt()
        self._skip_ws()
        if self.pos != len(self.text):
            raise DTDParseError(
                f"trailing content-model input at {self.pos}: "
                f"{self.text[self.pos:]!r}"
            )
        return model

    def alt(self) -> RModel:
        options = [self.cat()]
        while self.peek() == "|":
            self.pos += 1
            options.append(self.cat())
        if len(options) == 1:
            return options[0]
        return RAlt(tuple(options))

    def cat(self) -> RModel:
        items = [self.term()]
        while self.peek() == ",":
            self.pos += 1
            items.append(self.term())
        if len(items) == 1:
            return items[0]
        return RCat(tuple(items))

    def term(self) -> RModel:
        atom = self.atom()
        while self.peek() in ("*", "+", "?"):
            op = self.text[self.pos]
            self.pos += 1
            atom = RRepeat(atom, op)
        return atom

    def atom(self) -> RModel:
        self._skip_ws()
        ch = self.peek()
        if ch == "(":
            self.pos += 1
            inner = self.alt()
            if self.peek() != ")":
                raise DTDParseError(f"missing ')' at {self.pos}")
            self.pos += 1
            return inner
        if self.text.startswith("#PCDATA", self.pos):
            self.pos += len("#PCDATA")
            return RStr()
        if self.text.startswith("EMPTY", self.pos):
            self.pos += len("EMPTY")
            return REmpty()
        match = _NAME.match(self.text, self.pos)
        if not match:
            raise DTDParseError(
                f"expected a name or group at {self.pos} in {self.text!r}"
            )
        self.pos = match.end()
        return RName(match.group(0))


def parse_content_model(text: str) -> RModel:
    """Parse a general content-model expression."""
    return _ModelParser(text.strip()).parse()


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------
@dataclass
class _Normalizer:
    productions: dict[str, Content] = field(default_factory=dict)
    counter: int = 0
    needs_nothing: bool = False

    def fresh(self, base: str) -> str:
        self.counter += 1
        name = f"{base}-g{self.counter}"
        while name in self.productions:
            self.counter += 1
            name = f"{base}-g{self.counter}"
        return name

    # -- the element type that *holds* a model ------------------------
    def type_for(self, base: str, model: RModel) -> str:
        """A type whose production is ``model`` (fresh unless a bare name)."""
        if isinstance(model, RName):
            return model.name
        name = self.fresh(base)
        self.productions[name] = self.content_for(name, model)
        return name

    # -- the normal-form production of a model ------------------------
    def content_for(self, owner: str, model: RModel) -> Content:
        if isinstance(model, RStr):
            return StrContent()
        if isinstance(model, REmpty):
            return EmptyContent()
        if isinstance(model, RName):
            return Sequence((SeqItem(model.name),))
        if isinstance(model, RAlt):
            options = tuple(
                self.type_for(owner, option) for option in model.options
            )
            return Choice(options)
        if isinstance(model, RCat):
            items: list[SeqItem] = []
            for part in model.items:
                items.append(self.item_for(owner, part))
            return Sequence(tuple(items))
        if isinstance(model, RRepeat):
            return Sequence((self.item_for(owner, model),))
        raise TypeError(f"unknown content model {model!r}")

    def item_for(self, owner: str, model: RModel) -> SeqItem:
        """One concatenation slot: ``B`` or ``B*`` (with encodings)."""
        if isinstance(model, RName):
            return SeqItem(model.name)
        if isinstance(model, RRepeat):
            inner_type = self.type_for(owner, model.inner)
            if model.op == "*":
                return SeqItem(inner_type, starred=True)
            if model.op == "+":
                # B+ = B, B*: needs two slots — wrap in a fresh type.
                plus = self.fresh(owner)
                self.productions[plus] = Sequence(
                    (SeqItem(inner_type), SeqItem(inner_type, starred=True))
                )
                return SeqItem(plus)
            # B? = choice(B, nothing)
            self.needs_nothing = True
            opt = self.fresh(owner)
            self.productions[opt] = Choice((inner_type, NOTHING))
            return SeqItem(opt)
        # Nested group in a concatenation slot: wrap it.
        return SeqItem(self.type_for(owner, model))


def normalize_dtd(root: str, models: dict[str, str]) -> DTD:
    """Convert general content models to a normal-form :class:`DTD`.

    Args:
        root: Root element type.
        models: Mapping from element type to a general content-model
            expression (see module docstring for the syntax).

    Returns:
        A :class:`DTD` in the paper's normal form, with fresh wrapper types
        (named ``<owner>-g<N>``) and possibly the shared :data:`NOTHING`
        marker type.
    """
    normalizer = _Normalizer()
    for label, text in models.items():
        model = parse_content_model(text)
        normalizer.productions[label] = normalizer.content_for(label, model)
    if normalizer.needs_nothing and NOTHING not in normalizer.productions:
        normalizer.productions[NOTHING] = EmptyContent()
    return DTD(root, normalizer.productions)
