"""DTD model in the normal form of Section 2.2 of the paper.

A DTD ``D`` is a triple ``(Ele, P, r)``: a finite set of element types, a
production map, and a distinguished root type.  Each production ``P(A)`` is
one of

* ``str`` — the element holds PCDATA,
* ``ε`` — the element is empty,
* ``B1, ..., Bn`` — a concatenation where each ``Bi`` is ``B`` or ``B*``,
* ``B1 + ... + Bn`` — a disjunction of element types (n > 1).

The paper notes that any DTD can be brought to this normal form by
introducing fresh element types, so nothing is lost by restricting to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import DTDError


@dataclass(frozen=True)
class SeqItem:
    """One item ``B`` or ``B*`` of a concatenation production."""

    label: str
    starred: bool = False

    def __str__(self) -> str:
        return f"{self.label}*" if self.starred else self.label


@dataclass(frozen=True)
class StrContent:
    """``P(A) = str`` — PCDATA content."""

    def child_labels(self) -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "#PCDATA"


@dataclass(frozen=True)
class EmptyContent:
    """``P(A) = ε`` — no content."""

    def child_labels(self) -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "EMPTY"


@dataclass(frozen=True)
class Sequence:
    """``P(A) = B1, ..., Bn`` with optional stars."""

    items: tuple[SeqItem, ...]

    def child_labels(self) -> tuple[str, ...]:
        return tuple(item.label for item in self.items)

    def __str__(self) -> str:
        return ", ".join(str(item) for item in self.items)


@dataclass(frozen=True)
class Choice:
    """``P(A) = B1 + ... + Bn`` — exactly one of the alternatives."""

    options: tuple[str, ...]

    def child_labels(self) -> tuple[str, ...]:
        return self.options

    def __str__(self) -> str:
        return " + ".join(self.options)


Content = StrContent | EmptyContent | Sequence | Choice


@dataclass
class DTD:
    """A DTD ``(Ele, P, r)`` in the paper's normal form.

    Attributes:
        root: The distinguished root element type ``r``.
        productions: Mapping from element type to its :data:`Content`.
    """

    root: str
    productions: dict[str, Content] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    @property
    def element_types(self) -> set[str]:
        """The set ``Ele`` of element types."""
        return set(self.productions)

    def production(self, label: str) -> Content:
        """``P(label)``; raises :class:`DTDError` for unknown types."""
        try:
            return self.productions[label]
        except KeyError:
            raise DTDError(f"unknown element type {label!r}") from None

    def child_types(self, label: str) -> tuple[str, ...]:
        """All child element types that may appear below ``label``."""
        return self.production(label).child_labels()

    def edges(self) -> Iterable[tuple[str, str]]:
        """All parent/child type edges ``(A, B)`` of the DTD graph."""
        for parent, content in self.productions.items():
            for child in content.child_labels():
                yield parent, child

    def size(self) -> int:
        """|D|: number of types plus total production length."""
        return len(self.productions) + sum(
            len(c.child_labels()) for c in self.productions.values()
        )

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency (root defined, all references bound).

        Raises:
            DTDError: if the root or any referenced child type lacks a
                production, or a choice has fewer than two options.
        """
        if self.root not in self.productions:
            raise DTDError(f"root type {self.root!r} has no production")
        for parent, content in self.productions.items():
            if isinstance(content, Choice) and len(content.options) < 2:
                raise DTDError(
                    f"choice production of {parent!r} needs at least 2 options"
                )
            for child in content.child_labels():
                if child not in self.productions:
                    raise DTDError(
                        f"type {child!r} (child of {parent!r}) has no production"
                    )

    def __str__(self) -> str:
        lines = [f"root {self.root}"]
        for label, content in self.productions.items():
            lines.append(f"{label} -> {content}")
        return "\n".join(lines)


def dtd_from_mapping(root: str, productions: Mapping[str, object]) -> DTD:
    """Convenience constructor from a plain mapping.

    Values may be:

    * ``"#PCDATA"`` / ``"str"`` → :class:`StrContent`
    * ``""`` / ``"EMPTY"`` / ``None`` → :class:`EmptyContent`
    * a list of label strings, ``"B*"`` marking stars → :class:`Sequence`
    * a tuple of label strings → :class:`Choice`
    """
    built: dict[str, Content] = {}
    for label, spec in productions.items():
        if spec in ("#PCDATA", "str"):
            built[label] = StrContent()
        elif spec in ("", "EMPTY", None):
            built[label] = EmptyContent()
        elif isinstance(spec, tuple):
            built[label] = Choice(tuple(spec))
        elif isinstance(spec, list):
            items = tuple(
                SeqItem(item[:-1], True) if item.endswith("*") else SeqItem(item)
                for item in spec
            )
            built[label] = Sequence(items)
        else:
            raise DTDError(f"bad production spec for {label!r}: {spec!r}")
    return DTD(root, built)
