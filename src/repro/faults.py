"""Deterministic fault injection at the seams the stack already owns.

A :class:`FaultPlan` is a seeded, explicit schedule of faults to fire at
named **injection points** — places the serving stack already passes
through on every request, instrumented with one probe each:

==================  ====================================================
point               seam
==================  ====================================================
``plan-store.load``   :meth:`repro.compile.store.PlanStore.load` — I/O
                      delay, artifact corruption
``plan-store.save``   :meth:`repro.compile.store.PlanStore.save` — I/O
                      delay, write failure (``drop``)
``doc-tier.load``     :meth:`repro.docstore.store.DocIndexTier.load` —
                      I/O delay, index corruption
``worker.message``    the fleet worker's per-message loop
                      (:func:`repro.serve.fleet._serve_worker`) — crash
                      (``os._exit``) and hang
``worker.connect``    :meth:`repro.serve.fleet.WorkerHandle.call` on the
                      acceptor side — connection drop before send (the
                      unacknowledged-retry path)
``descend``           :func:`repro.hype.kernel.descend` entry — slow
                      descent (exercises deadlines under load)
==================  ====================================================

Schedules are **deterministic**: a rule names the exact 1-based hit
numbers it fires on (``hits=[2, 5]``), or a modulus (``every=3`` — every
third hit, optionally the first ``limit`` times).  Two runs of the same
plan over the same traffic fire identically; the chaos smoke
(``make chaos-smoke``) relies on this to assert exact structured
outcomes under a crash + hang + delay + corruption schedule.

Activation: :func:`install` in-process, or the ``REPRO_FAULTS``
environment variable (the JSON of :meth:`FaultPlan.as_dict`) — fleet
workers inherit the acceptor's environment, so one variable faults a
whole fleet.  **Inert by default**: with no plan installed every probe
is a single module-global ``None`` check.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass

#: Actions a rule may take.  ``delay``/``hang`` sleep for
#: ``seconds`` (a hang is just a delay long enough to trip timeouts);
#: ``corrupt``, ``crash`` and ``drop`` are interpreted by the seam:
#: corrupt mangles the payload being read, crash is ``os._exit``, drop
#: raises the seam's connection error.
ACTIONS = ("delay", "hang", "corrupt", "crash", "drop")


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: *what* fires, *where*, and on *which hits*.

    ``hits`` (exact 1-based hit numbers) and ``every`` (modulus) are
    alternative triggers; with neither, the rule fires on every hit.
    ``limit`` caps total firings (0 = unlimited).  ``scope`` restricts
    the rule to one named process (a fleet worker's name, set via
    :func:`set_scope`); empty matches every process — the lever that
    lets ONE shared ``REPRO_FAULTS`` schedule crash worker ``w0`` while
    only hanging ``w1``.
    """

    point: str
    action: str
    hits: tuple[int, ...] = ()
    every: int = 0
    limit: int = 0
    seconds: float = 0.0
    scope: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; one of {ACTIONS}"
            )
        if self.every < 0 or self.limit < 0 or self.seconds < 0:
            raise ValueError("fault rule fields must be non-negative")

    def matches(self, hit: int, fired: int) -> bool:
        """Whether hit number ``hit`` fires, given ``fired`` prior firings."""
        if self.limit and fired >= self.limit:
            return False
        if self.hits:
            return hit in self.hits
        if self.every:
            return hit % self.every == 0
        return True

    def as_dict(self) -> dict:
        return {
            "point": self.point,
            "action": self.action,
            "hits": list(self.hits),
            "every": self.every,
            "limit": self.limit,
            "seconds": self.seconds,
            "scope": self.scope,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        return cls(
            point=str(data["point"]),
            action=str(data["action"]),
            hits=tuple(int(h) for h in data.get("hits", ())),
            every=int(data.get("every", 0)),
            limit=int(data.get("limit", 0)),
            seconds=float(data.get("seconds", 0.0)),
            scope=str(data.get("scope", "")),
        )


class FaultPlan:
    """A thread-safe, seeded schedule of :class:`FaultRule` firings.

    ``seed`` identifies the schedule (it is echoed through logs and the
    chaos smoke's output); determinism comes from the explicit hit
    schedules, not from randomness at fire time.
    """

    def __init__(self, rules, seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}

    # ------------------------------------------------------------------
    def fire(self, point: str, scope: str = "") -> FaultRule | None:
        """Count one hit at ``point``; the rule that fires, or ``None``.

        At most one rule fires per hit (first match in plan order), so a
        schedule stays readable: rules for one point are disjoint by
        construction when their ``hits`` lists are.  ``scope`` is the
        calling process's name; scoped rules only fire when it matches
        (unmatched scoped rules still consume the hit number, keeping
        hit counts identical across differently-named processes).
        """
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            for idx, rule in enumerate(self.rules):
                if rule.point != point:
                    continue
                if rule.scope and rule.scope != scope:
                    continue
                if rule.matches(hit, self._fired.get(idx, 0)):
                    self._fired[idx] = self._fired.get(idx, 0) + 1
                    return rule
            return None

    def hits(self, point: str) -> int:
        """Total probe hits recorded at ``point``."""
        with self._lock:
            return self._hits.get(point, 0)

    def fired_counts(self) -> dict[str, int]:
        """``{point: firings}`` over every rule (the smoke's evidence)."""
        with self._lock:
            counts: dict[str, int] = {}
            for idx, n in self._fired.items():
                point = self.rules[idx].point
                counts[point] = counts.get(point, 0) + n
            return counts

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.as_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            [FaultRule.from_dict(r) for r in data.get("rules", ())],
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


#: The env var carrying a plan's JSON.  Fleet workers inherit the
#: acceptor's environment, so exporting it faults every process.
ENV_VAR = "REPRO_FAULTS"

#: The installed plan; ``None`` keeps every probe a single global read.
_active: FaultPlan | None = None

#: This process's name for scoped rules (a fleet worker sets its worker
#: name; empty everywhere else).
_scope: str = ""


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide (``None`` uninstalls); returns it."""
    global _active
    _active = plan
    return plan


def set_scope(name: str) -> None:
    """Name this process for ``FaultRule.scope`` matching."""
    global _scope
    _scope = name


def active() -> FaultPlan | None:
    return _active


def install_from_env(environ=None) -> FaultPlan | None:
    """Install the :data:`ENV_VAR` plan if set (malformed JSON raises)."""
    raw = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not raw:
        return None
    return install(FaultPlan.from_json(raw))


def fire(point: str) -> FaultRule | None:
    """The probe call sites use: one ``None`` check when no plan is on.

    Sleeping actions (``delay``/``hang``) sleep *here*, so seams only
    interpret the payload-shaped actions (corrupt/crash/drop) they own;
    the rule is returned either way for seams that also want to count.
    """
    plan = _active
    if plan is None:
        return None
    rule = plan.fire(point, _scope)
    if rule is not None and rule.seconds and rule.action in ("delay", "hang"):
        time.sleep(rule.seconds)
    return rule


# Import-time env activation: a subprocess (fleet worker, CLI) that
# imports repro with REPRO_FAULTS exported starts faulted without any
# plumbing.  A malformed value must not take the process down — it is
# ignored (the chaos harness always writes well-formed plans).
try:  # pragma: no cover - exercised via subprocess in the chaos smoke
    install_from_env()
except (ValueError, KeyError, TypeError):  # pragma: no cover
    _active = None
