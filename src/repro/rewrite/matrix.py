"""Kleene matrix algebra over ``Xreg`` ASTs (for the direct rewriting).

Rewriting a view query into a source query is regular-language algebra over
the view-type set: entry ``M[A][B]`` is an ``Xreg`` expression (over the
*source* DTD) describing how a view path takes an ``A``-context to a
``B``-typed view node.  Concatenation of view queries is matrix product,
union is elementwise, and Kleene star is the Floyd–Warshall–Kleene closure.

``None`` entries denote the empty language ∅ (absorbing for concatenation,
neutral for union); they keep the expressions from drowning in unsatisfiable
alternatives.

This module is the engine room of Theorem 3.2's constructive proof — and of
Corollary 3.3's exponential blow-up, which the E9 benchmark measures.
"""

from __future__ import annotations

from ..xpath import ast
from ..xpath.normalize import simplify

Entry = ast.Path | None


class PathMatrix:
    """A square matrix over view types with ``Xreg``/∅ entries."""

    def __init__(self, types: tuple[str, ...]) -> None:
        self.types = types
        self.entries: dict[tuple[str, str], ast.Path] = {}

    # ------------------------------------------------------------------
    def get(self, row: str, col: str) -> Entry:
        return self.entries.get((row, col))

    def set(self, row: str, col: str, value: Entry) -> None:
        if value is None:
            self.entries.pop((row, col), None)
        else:
            self.entries[(row, col)] = value

    def add(self, row: str, col: str, value: Entry) -> None:
        """Union ``value`` into an entry."""
        if value is None:
            return
        current = self.entries.get((row, col))
        self.entries[(row, col)] = _union(current, value)

    def row(self, row: str) -> dict[str, ast.Path]:
        """Non-empty entries of one row, keyed by column type."""
        return {
            col: entry
            for (r, col), entry in self.entries.items()
            if r == row
        }

    def size(self) -> int:
        """Total AST size over all entries — the |Q'| measure of E9."""
        return sum(entry.size() for entry in self.entries.values())

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, types: tuple[str, ...]) -> "PathMatrix":
        matrix = cls(types)
        for t in types:
            matrix.set(t, t, ast.Empty())
        return matrix

    def multiply(self, other: "PathMatrix") -> "PathMatrix":
        """Matrix product: concatenation along a shared middle type."""
        result = PathMatrix(self.types)
        for (row, mid), left in self.entries.items():
            for col in other.types:
                right = other.get(mid, col)
                if right is not None:
                    result.add(row, col, _concat(left, right))
        return result

    def union(self, other: "PathMatrix") -> "PathMatrix":
        result = PathMatrix(self.types)
        for (row, col), entry in self.entries.items():
            result.add(row, col, entry)
        for (row, col), entry in other.entries.items():
            result.add(row, col, entry)
        return result

    def star(self) -> "PathMatrix":
        """Kleene closure via Floyd–Warshall–Kleene.

        ``result[i][j]`` describes all paths made of zero or more query
        iterations, pivoting through intermediate types one at a time.
        """
        closure = PathMatrix(self.types)
        for key, entry in self.entries.items():
            closure.entries[key] = entry
        for pivot in self.types:
            loop = closure.get(pivot, pivot)
            loop_star = ast.Star(loop) if loop is not None else None
            updated = PathMatrix(self.types)
            for key, entry in closure.entries.items():
                updated.entries[key] = entry
            for row in self.types:
                into = closure.get(row, pivot)
                if into is None:
                    continue
                for col in self.types:
                    out = closure.get(pivot, col)
                    if out is None:
                        continue
                    middle = into
                    if loop_star is not None:
                        middle = _concat(into, loop_star)
                    updated.add(row, col, _concat(middle, out))
            closure = updated
        # Zero iterations: the identity.
        for t in self.types:
            closure.add(t, t, ast.Empty())
        return closure

    def map_filtered(self, filter_for_type) -> "PathMatrix":
        """Apply ``[filter_for_type(col)]`` to every entry, per end type.

        ``filter_for_type`` returns a :class:`~repro.xpath.ast.Filter` or
        ``None`` (meaning "definitely false" — the entry is dropped).
        """
        result = PathMatrix(self.types)
        for (row, col), entry in self.entries.items():
            predicate = filter_for_type(col)
            if predicate is None:
                continue
            result.add(row, col, ast.Filtered(entry, predicate))
        return result


def _concat(left: ast.Path, right: ast.Path) -> ast.Path:
    if isinstance(left, ast.Empty):
        return right
    if isinstance(right, ast.Empty):
        return left
    return ast.Concat(left, right)


def _union(current: Entry, value: ast.Path) -> ast.Path:
    if current is None:
        return value
    if current == value:
        return current
    return ast.Union(current, value)


def simplify_matrix(matrix: PathMatrix) -> PathMatrix:
    """Apply local AST simplification to every entry."""
    result = PathMatrix(matrix.types)
    for (row, col), entry in matrix.entries.items():
        result.entries[(row, col)] = simplify(entry)
    return result
