"""Query rewriting: the MFA algorithm (Section 5) and the direct closure
construction (Section 3)."""

from .direct import DirectRewriter, EMPTY_PATH, FALSE_FILTER, rewrite_to_xreg
from .matrix import PathMatrix, simplify_matrix
from .mfa_rewrite import MFARewriter, rewrite_query, trim_mfa
from .state_elim import eliminate_states, mfa_to_xreg

__all__ = [
    "rewrite_query",
    "eliminate_states",
    "mfa_to_xreg",
    "MFARewriter",
    "trim_mfa",
    "rewrite_to_xreg",
    "DirectRewriter",
    "PathMatrix",
    "simplify_matrix",
    "EMPTY_PATH",
    "FALSE_FILTER",
]
