"""Algorithm ``rewrite`` (Section 5): view queries → MFAs over the source.

Dynamic programming over ``(sub-query, view type)`` pairs, exactly the
``rewr(Q', A)`` of the paper: for each sub-query of ``Q`` and element type
``A`` of the view DTD, build (once — results are memoised and shared
through ε-edges) an NFA fragment over the *source* alphabet equivalent to
``Q'`` evaluated at ``A``-typed view nodes.

* a view label step ``B`` in context ``A`` inlines the compiled automaton
  of the annotation ``σ(A,B)``;
* concatenation routes each typed end of the left fragment into the right
  fragment built for that type (Example 5.1's ``M³`` construction);
* Kleene star allocates one *hub* state per view type touched by the loop
  and wires iteration ends back to the hub of their end type (the
  ε-transitions "for the recursion" of Example 5.1);
* filters compile to AFAs over the source by *embedding* the typed NFA
  fragment of the filter path into AFA form — nondeterministic branching
  becomes OR states, λ-annotations become AND gates, nested filters land in
  one flat AFA (Example 5.2).

The dynamic program is keyed by *parse-tree position* and view type — not
by sub-query value.  Value-keyed sharing would be unsound: a fragment built
for one occurrence of ``X`` may receive continuation ε-edges (say into a
Kleene hub) that must not apply to a different occurrence (``X | X*`` is
the minimal counterexample: value-sharing would accept ``X/X/Y`` for the
query ``X/Y | X*``).  Per-position memoisation still gives the paper's
bound: each position is built for at most ``|D_V|`` types and each build
inlines at most one ``σ(A,B)`` automaton, so the output MFA has size
``O(|Q|·|σ|·|D_V|)`` and is built in low polynomial time (Theorem 5.1) —
in stark contrast with the exponential direct rewriting of
:mod:`repro.rewrite.direct`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.afa import TextPred, WILDCARD
from ..automata.compile import MFABuilder
from ..automata.mfa import MFA
from ..automata.nfa import NFA
from ..dtd.model import StrContent
from ..errors import RewriteError
from ..views.spec import ViewSpec
from ..xpath import ast
from ..xpath.fragment import to_xreg
from ..xpath.normalize import simplify
from ..xpath.parser import parse_query

#: Typed fragment: entry state + final states grouped by view end type.
@dataclass(frozen=True)
class TypedFragment:
    start: int
    finals: dict[str, frozenset[int]]

    def all_finals(self) -> frozenset[int]:
        result: set[int] = set()
        for finals in self.finals.values():
            result |= finals
        return result


class MFARewriter:
    """The dynamic program; one instance per (view, query) rewriting."""

    def __init__(self, spec: ViewSpec) -> None:
        self.spec = spec
        self.builder = MFABuilder()
        self._edges = set(spec.view_dtd.edges())
        self._children: dict[str, tuple[str, ...]] = {
            label: tuple(dict.fromkeys(content.child_labels()))
            for label, content in spec.view_dtd.productions.items()
        }
        self._str_types = {
            label
            for label, content in spec.view_dtd.productions.items()
            if isinstance(content, StrContent)
        }
        # Keyed by (id(position), type); _pins keeps the uniquified AST
        # alive so ids stay stable for the rewriting's duration.
        self._path_memo: dict[tuple[int, str], TypedFragment] = {}
        self._filter_memo: dict[tuple[int, str], int] = {}
        self._pins: list[ast.Path | ast.Filter] = []

    # ------------------------------------------------------------------
    def rewrite(self, query: ast.Path, *, trim: bool = True) -> MFA:
        """Compute the MFA ``M`` with ``M(T) = Q(σ(T))`` for all ``T``.

        ``trim=False`` returns the raw construction (dead filter-path
        fragments still in the selecting NFA); callers that time the
        pipeline stage-by-stage (:mod:`repro.compile`) run
        :func:`trim_mfa` themselves.
        """
        prepared = _uniquify_path(simplify(to_xreg(query)))
        self._pins.append(prepared)
        fragment = self.rewr(prepared, self.spec.view_dtd.root)
        mfa = self.builder.finish(
            fragment.start,
            set(fragment.all_finals()),
            description="rewritten view query",
        )
        return trim_mfa(mfa) if trim else mfa

    # ------------------------------------------------------------------
    # rewr(Q', A) — the typed dynamic program
    # ------------------------------------------------------------------
    def rewr(self, query: ast.Path, view_type: str) -> TypedFragment:
        key = (id(query), view_type)
        cached = self._path_memo.get(key)
        if cached is not None:
            return cached
        fragment = self._build(query, view_type)
        self._path_memo[key] = fragment
        return fragment

    def _build(self, query: ast.Path, view_type: str) -> TypedFragment:
        nfa = self.builder.nfa
        if isinstance(query, ast.Empty):
            state = nfa.new_state()
            return TypedFragment(state, {view_type: frozenset({state})})
        if isinstance(query, ast.Label):
            return self._step(view_type, query.name)
        if isinstance(query, ast.Wildcard):
            return self._wildcard(view_type)
        if isinstance(query, ast.DescOrSelf):  # pragma: no cover - desugared
            return self._build(ast.Star(ast.Wildcard()), view_type)
        if isinstance(query, ast.Concat):
            return self._concat(query, view_type)
        if isinstance(query, ast.Union):
            left = self.rewr(query.left, view_type)
            right = self.rewr(query.right, view_type)
            start = nfa.new_state()
            nfa.add_eps(start, left.start)
            nfa.add_eps(start, right.start)
            return TypedFragment(start, _merge(left.finals, right.finals))
        if isinstance(query, ast.Star):
            return self._star(query, view_type)
        if isinstance(query, ast.Filtered):
            return self._filtered(query, view_type)
        raise RewriteError(f"cannot rewrite path node {query!r}")

    def _step(self, view_type: str, child: str) -> TypedFragment:
        """One view child step: inline the σ(A,B) automaton."""
        nfa = self.builder.nfa
        if (view_type, child) not in self._edges:
            dead = nfa.new_state()
            return TypedFragment(dead, {})
        annotation = self.spec.annotation(view_type, child)
        start, finals = self.builder.path_fragment(annotation)
        return TypedFragment(start, {child: frozenset(finals)})

    def _wildcard(self, view_type: str) -> TypedFragment:
        nfa = self.builder.nfa
        start = nfa.new_state()
        finals: dict[str, frozenset[int]] = {}
        for child in self._children.get(view_type, ()):
            piece = self._step(view_type, child)
            nfa.add_eps(start, piece.start)
            finals = _merge(finals, piece.finals)
        return TypedFragment(start, finals)

    def _concat(self, query: ast.Concat, view_type: str) -> TypedFragment:
        nfa = self.builder.nfa
        left = self.rewr(query.left, view_type)
        finals: dict[str, frozenset[int]] = {}
        for middle_type, left_finals in left.finals.items():
            right = self.rewr(query.right, middle_type)
            for final in left_finals:
                nfa.add_eps(final, right.start)
            finals = _merge(finals, right.finals)
        return TypedFragment(left.start, finals)

    def _star(self, query: ast.Star, view_type: str) -> TypedFragment:
        """Per-type hub states; iteration ends loop back via ε (Ex. 5.1)."""
        nfa = self.builder.nfa
        hubs: dict[str, int] = {view_type: nfa.new_state()}
        worklist = [view_type]
        while worklist:
            current = worklist.pop()
            body = self.rewr(query.inner, current)
            nfa.add_eps(hubs[current], body.start)
            for end_type, body_finals in body.finals.items():
                hub = hubs.get(end_type)
                if hub is None:
                    hub = nfa.new_state()
                    hubs[end_type] = hub
                    worklist.append(end_type)
                for final in body_finals:
                    nfa.add_eps(final, hub)
        return TypedFragment(
            hubs[view_type],
            {t: frozenset({hub}) for t, hub in hubs.items()},
        )

    def _filtered(self, query: ast.Filtered, view_type: str) -> TypedFragment:
        nfa = self.builder.nfa
        inner = self.rewr(query.path, view_type)
        finals: dict[str, frozenset[int]] = {}
        for end_type, end_finals in inner.finals.items():
            entry = self.rewr_filter(query.predicate, end_type)
            gate = nfa.new_state()
            for final in end_finals:
                nfa.add_eps(final, gate)
            self.builder.nfa.annotate(gate, entry)
            finals = _merge(finals, {end_type: frozenset({gate})})
        return TypedFragment(inner.start, finals)

    # ------------------------------------------------------------------
    # rewr for filters — typed NFA fragments embedded as AFAs
    # ------------------------------------------------------------------
    def rewr_filter(self, predicate: ast.Filter, view_type: str) -> int:
        """AFA entry for ``predicate`` at ``view_type`` contexts.

        A filter that is provably false at this type (e.g. a text
        comparison on a type that cannot reach any str-typed view node)
        compiles to an OR state with no alternatives — constant false.
        """
        key = (id(predicate), view_type)
        if key in self._filter_memo:
            return self._filter_memo[key]
        entry = self._build_filter(predicate, view_type)
        self._filter_memo[key] = entry
        return entry

    def _build_filter(self, predicate: ast.Filter, view_type: str) -> int:
        pool = self.builder.pool
        if isinstance(predicate, ast.Exists):
            fragment = self.rewr(predicate.path, view_type)
            pred_for = {t: "plain" for t in fragment.finals}
            if not fragment.finals:
                return pool.new_or([])  # false
            return self._embed(fragment, pred_for, None)
        if isinstance(predicate, ast.TextEquals):
            fragment = self.rewr(predicate.path, view_type)
            pred_for: dict[str, str] = {}
            for end_type in fragment.finals:
                if end_type in self._str_types:
                    pred_for[end_type] = "text"
                elif predicate.value == "":
                    # Non-str view nodes carry empty text.
                    pred_for[end_type] = "plain"
            if not pred_for:
                return pool.new_or([])  # false
            return self._embed(fragment, pred_for, predicate.value)
        if isinstance(predicate, ast.Not):
            return pool.new_not(self.rewr_filter(predicate.inner, view_type))
        if isinstance(predicate, ast.And):
            left = self.rewr_filter(predicate.left, view_type)
            right = self.rewr_filter(predicate.right, view_type)
            return pool.new_and([left, right])
        if isinstance(predicate, ast.Or):
            left = self.rewr_filter(predicate.left, view_type)
            right = self.rewr_filter(predicate.right, view_type)
            return pool.new_or([left, right])
        raise RewriteError(f"cannot rewrite filter node {predicate!r}")

    def _embed(
        self,
        fragment: TypedFragment,
        pred_for: dict[str, str],
        text_value: str | None,
    ) -> int:
        """Embed a typed NFA fragment into the AFA pool.

        Each NFA state reachable from the fragment start becomes an OR state
        whose alternatives are (a) one transition state per labelled edge,
        (b) the shells of its ε-successors, and (c) a final when the state
        ends the fragment at an accepting type.  λ-annotated states become
        ``AND(gate, OR(...))``.
        """
        nfa = self.builder.nfa
        pool = self.builder.pool
        finals_by_state: dict[int, str] = {}
        for end_type, finals in fragment.finals.items():
            kind = pred_for.get(end_type)
            if kind is None:
                continue
            for state in finals:
                # An NFA state ends at exactly one view type in our
                # construction (fragments keep types separate).
                finals_by_state[state] = kind

        reachable = _reachable_from(nfa, fragment.start)
        shells: dict[int, int] = {}
        anchors: dict[int, int] = {}
        for state in reachable:
            shell = pool.new_or([])
            shells[state] = shell
            gate = nfa.ann.get(state)
            if gate is not None:
                anchors[state] = pool.new_and([gate, shell])
            else:
                anchors[state] = shell

        for state in reachable:
            alternatives: list[int] = []
            for label, targets in nfa.trans[state].items():
                for target in targets:
                    if target in anchors:
                        alternatives.append(pool.new_trans(label, anchors[target]))
            for target in nfa.eps[state]:
                if target in anchors:
                    alternatives.append(anchors[target])
            kind = finals_by_state.get(state)
            if kind == "plain":
                alternatives.append(pool.new_final(None))
            elif kind == "text":
                assert text_value is not None
                alternatives.append(pool.new_final(TextPred(text_value)))
            pool.wire(shells[state], *alternatives)
        return anchors[fragment.start]


def _uniquify_path(node: ast.Path) -> ast.Path:
    """Rebuild the AST so every position is a distinct object.

    User-built ASTs may share subtree objects between positions (e.g.
    ``union(x, star(x))`` with one ``x``); the id-keyed memo requires each
    position to have its own identity.
    """
    if isinstance(node, ast.Concat):
        return ast.Concat(_uniquify_path(node.left), _uniquify_path(node.right))
    if isinstance(node, ast.Union):
        return ast.Union(_uniquify_path(node.left), _uniquify_path(node.right))
    if isinstance(node, ast.Star):
        return ast.Star(_uniquify_path(node.inner))
    if isinstance(node, ast.Filtered):
        return ast.Filtered(
            _uniquify_path(node.path), _uniquify_filter(node.predicate)
        )
    if isinstance(node, ast.Label):
        return ast.Label(node.name)
    if isinstance(node, ast.Empty):
        return ast.Empty()
    if isinstance(node, ast.Wildcard):
        return ast.Wildcard()
    if isinstance(node, ast.DescOrSelf):
        return ast.DescOrSelf()
    raise RewriteError(f"cannot uniquify path node {node!r}")


def _uniquify_filter(node: ast.Filter) -> ast.Filter:
    if isinstance(node, ast.Exists):
        return ast.Exists(_uniquify_path(node.path))
    if isinstance(node, ast.TextEquals):
        return ast.TextEquals(_uniquify_path(node.path), node.value)
    if isinstance(node, ast.Not):
        return ast.Not(_uniquify_filter(node.inner))
    if isinstance(node, ast.And):
        return ast.And(_uniquify_filter(node.left), _uniquify_filter(node.right))
    if isinstance(node, ast.Or):
        return ast.Or(_uniquify_filter(node.left), _uniquify_filter(node.right))
    raise RewriteError(f"cannot uniquify filter node {node!r}")


def _merge(
    left: dict[str, frozenset[int]], right: dict[str, frozenset[int]]
) -> dict[str, frozenset[int]]:
    merged = dict(left)
    for end_type, finals in right.items():
        existing = merged.get(end_type)
        merged[end_type] = finals if existing is None else existing | finals
    return merged


def _reachable_from(nfa: NFA, start: int) -> set[int]:
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for targets in nfa.trans[state].values():
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        for target in nfa.eps[state]:
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return seen


def trim_mfa(mfa: MFA) -> MFA:
    """Drop NFA states unreachable from the start (AFA pool is shared as-is).

    Rewriting builds filter-path fragments inside the selecting NFA before
    embedding them into AFAs; those fragments are dead weight afterwards.
    """
    nfa = mfa.nfa
    reachable = sorted(_reachable_from(nfa, nfa.start))
    renumber = {old: new for new, old in enumerate(reachable)}
    trimmed = NFA()
    for _ in reachable:
        trimmed.new_state()
    for old in reachable:
        new = renumber[old]
        for label, targets in nfa.trans[old].items():
            for target in targets:
                if target in renumber:
                    trimmed.add_edge(new, label, renumber[target])
        for target in nfa.eps[old]:
            if target in renumber:
                trimmed.add_eps(new, renumber[target])
        entry = nfa.ann.get(old)
        if entry is not None:
            trimmed.annotate(new, entry)
    trimmed.start = renumber[nfa.start]
    trimmed.finals = {renumber[f] for f in nfa.finals if f in renumber}
    result = MFA(trimmed, mfa.pool, description=mfa.description, meta=dict(mfa.meta))
    result.validate()
    return result


def rewrite_query(
    spec: ViewSpec, query: ast.Path | str, *, trim: bool = True
) -> MFA:
    """One-shot MFA rewriting: ``rewrite_query(σ, Q)`` returns ``M``.

    For any source tree ``T``: evaluating ``M`` at ``T``'s root equals
    ``Q(σ(T))`` as source-node sets (view answers mapped by provenance).
    ``trim=False`` skips the final :func:`trim_mfa` (see
    :meth:`MFARewriter.rewrite`).
    """
    if isinstance(query, str):
        query = parse_query(query)
    return MFARewriter(spec).rewrite(query, trim=trim)
