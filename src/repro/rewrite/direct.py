"""Direct ``Xreg → Xreg`` query rewriting (Theorems 3.2 / Corollary 3.3).

The constructive proof that regular XPath is closed under rewriting for
arbitrary (recursive or not) views: a view query is rewritten to a source
query by interpreting it over the :class:`~repro.rewrite.matrix.PathMatrix`
Kleene algebra — every view label step ``B`` in view context ``A`` is
replaced by the annotation ``σ(A,B)``, with matrix product/star tracking
the view type through concatenations and Kleene closures.

The output *is* an ordinary ``Xreg`` AST evaluable by any of our engines —
but its size is worst-case exponential in ``|Q|`` and ``|D_V|``
(Corollary 3.3; the rewriting problem subsumes NFA → regular-expression
translation).  Benchmark E9 measures the blow-up against the MFA rewriting
of :mod:`repro.rewrite.mfa_rewrite`, which is what makes the paper's
approach practical.

Text-equality subtlety: a view node carries text only when its type has
``str`` content (materialisation copies the source context node's text).
``TextEquals`` filters therefore rewrite per end type: ``str`` types test
the source node's text; element/empty types have ``text() = ''`` on the
view, so they contribute an existence test exactly when the constant is
the empty string.
"""

from __future__ import annotations

from ..dtd.model import StrContent
from ..errors import RewriteError
from ..views.spec import ViewSpec
from ..xpath import ast
from ..xpath.fragment import to_xreg
from ..xpath.normalize import simplify, simplify_filter
from .matrix import PathMatrix

#: A filter that never holds — used for provably empty rewritings.
FALSE_FILTER = ast.Not(ast.Exists(ast.Empty()))

#: A path selecting nothing — the rewriting of an unsatisfiable view query.
EMPTY_PATH = ast.Filtered(ast.Empty(), FALSE_FILTER)


class DirectRewriter:
    """Rewrites view queries to source ``Xreg`` queries via matrix algebra."""

    def __init__(self, spec: ViewSpec) -> None:
        self.spec = spec
        self.types = tuple(sorted(spec.view_dtd.productions))
        self._str_types = {
            label
            for label, content in spec.view_dtd.productions.items()
            if isinstance(content, StrContent)
        }
        self._edges = set(spec.view_dtd.edges())

    # ------------------------------------------------------------------
    def rewrite(self, query: ast.Path) -> ast.Path:
        """Rewrite ``query`` (over the view) into ``Xreg`` over the source.

        The result ``Q'`` satisfies ``Q(σ(T)) = Q'(T)`` for every document
        ``T`` of the source DTD, reading both sides as source-node sets
        (view nodes are identified with their provenance).
        """
        matrix = self._path_matrix(to_xreg(query))
        alternatives = [
            entry
            for (row, _col), entry in matrix.entries.items()
            if row == self.spec.view_dtd.root
        ]
        if not alternatives:
            return EMPTY_PATH
        result = alternatives[0]
        for alternative in alternatives[1:]:
            result = ast.Union(result, alternative)
        return simplify(result)

    def path_matrix(self, query: ast.Path) -> PathMatrix:
        """Public typed-rewriting matrix: entry ``[A][B]`` is the source
        query taking an ``A``-context to ``B``-typed view ends (∅ absent).

        Used by view composition (:mod:`repro.views.compose`)."""
        return self._path_matrix(to_xreg(query))

    # ------------------------------------------------------------------
    def _path_matrix(self, query: ast.Path) -> PathMatrix:
        if isinstance(query, ast.Empty):
            return PathMatrix.identity(self.types)
        if isinstance(query, ast.Label):
            matrix = PathMatrix(self.types)
            for parent, child in self._edges:
                if child == query.name:
                    matrix.add(parent, child, self.spec.annotation(parent, child))
            return matrix
        if isinstance(query, ast.Wildcard):
            matrix = PathMatrix(self.types)
            for parent, child in self._edges:
                matrix.add(parent, child, self.spec.annotation(parent, child))
            return matrix
        if isinstance(query, ast.DescOrSelf):  # pragma: no cover - desugared
            return self._path_matrix(ast.Star(ast.Wildcard()))
        if isinstance(query, ast.Concat):
            left = self._path_matrix(query.left)
            right = self._path_matrix(query.right)
            return left.multiply(right)
        if isinstance(query, ast.Union):
            left = self._path_matrix(query.left)
            right = self._path_matrix(query.right)
            return left.union(right)
        if isinstance(query, ast.Star):
            return self._path_matrix(query.inner).star()
        if isinstance(query, ast.Filtered):
            matrix = self._path_matrix(query.path)
            return matrix.map_filtered(
                lambda end_type: self._filter_for(query.predicate, end_type)
            )
        raise RewriteError(f"cannot rewrite path node {query!r}")

    # ------------------------------------------------------------------
    def _filter_for(self, predicate: ast.Filter, view_type: str) -> ast.Filter | None:
        """Rewrite a filter for evaluation at a ``view_type`` context.

        Returns ``None`` when the filter is *provably false* at that type
        (the enclosing matrix entry is dropped).
        """
        if isinstance(predicate, ast.Exists):
            matrix = self._path_matrix(predicate.path)
            targets = list(matrix.row(view_type).values())
            if not targets:
                return None
            return ast.Exists(_union_all(targets))
        if isinstance(predicate, ast.TextEquals):
            matrix = self._path_matrix(predicate.path)
            str_targets: list[ast.Path] = []
            other_targets: list[ast.Path] = []
            for end_type, entry in matrix.row(view_type).items():
                if end_type in self._str_types:
                    str_targets.append(entry)
                else:
                    other_targets.append(entry)
            parts: list[ast.Filter] = []
            if str_targets:
                parts.append(
                    ast.TextEquals(_union_all(str_targets), predicate.value)
                )
            if other_targets and predicate.value == "":
                # Non-str view nodes have empty text; reachability suffices.
                parts.append(ast.Exists(_union_all(other_targets)))
            if not parts:
                return None
            result = parts[0]
            for part in parts[1:]:
                result = ast.Or(result, part)
            return result
        if isinstance(predicate, ast.Not):
            inner = self._filter_for(predicate.inner, view_type)
            if inner is None:
                # ¬false = true: drop the filter entirely.
                return ast.Exists(ast.Empty())
            return ast.Not(inner)
        if isinstance(predicate, ast.And):
            left = self._filter_for(predicate.left, view_type)
            right = self._filter_for(predicate.right, view_type)
            if left is None or right is None:
                return None
            return ast.And(left, right)
        if isinstance(predicate, ast.Or):
            left = self._filter_for(predicate.left, view_type)
            right = self._filter_for(predicate.right, view_type)
            if left is None:
                return right
            if right is None:
                return left
            return ast.Or(left, right)
        raise RewriteError(f"cannot rewrite filter node {predicate!r}")


def _union_all(paths: list[ast.Path]) -> ast.Path:
    result = paths[0]
    for path in paths[1:]:
        result = ast.Union(result, path)
    return result


def rewrite_to_xreg(spec: ViewSpec, query: ast.Path) -> ast.Path:
    """One-shot direct rewriting (see :class:`DirectRewriter`)."""
    return DirectRewriter(spec).rewrite(query)
