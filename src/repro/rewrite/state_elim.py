"""NFA → ``Xreg`` conversion by state elimination (Theorem 4.1, MFA→query).

Completes the equivalence of Theorem 4.1 in the automaton→query direction
for *filter-free* MFAs: Brzozowski–McCluskey state elimination over edges
labelled with ``Xreg`` ASTs.  The output expression is equivalent to the
automaton but — as Corollary 3.3 predicts (the rewriting problem subsumes
NFA→regular-expression translation, which is EXPTIME-complete) — its size
is worst-case exponential in the number of states; :func:`eliminate_states`
is therefore an analysis/exposition tool, not an execution path.

Annotated MFAs would require reconstructing filter expressions from AFA
graphs (whose cycles encode stars); rewriting keeps the original filter
ASTs around instead, so the general direction is intentionally out of
scope and raises :class:`AutomatonError`.
"""

from __future__ import annotations

from ..automata.afa import WILDCARD
from ..automata.mfa import MFA
from ..automata.nfa import NFA
from ..errors import AutomatonError
from ..xpath import ast
from ..xpath.normalize import simplify

Edge = dict[tuple[int, int], ast.Path]


def _edge_union(edges: Edge, key: tuple[int, int], value: ast.Path) -> None:
    current = edges.get(key)
    if current is None:
        edges[key] = value
    elif current != value:
        edges[key] = ast.Union(current, value)


def _label_path(label: str) -> ast.Path:
    if label == WILDCARD:
        return ast.Wildcard()
    return ast.Label(label)


def eliminate_states(nfa: NFA) -> ast.Path:
    """Convert a filter-free selecting NFA into an equivalent ``Xreg`` query.

    Raises:
        AutomatonError: if the NFA carries λ-annotations (filters).
    """
    if nfa.ann:
        raise AutomatonError(
            "state elimination supports filter-free automata only; "
            "rewriting keeps filter ASTs to avoid AFA reconstruction"
        )
    n = nfa.num_states
    # Fresh virtual start (-1) and accept (-2) states.
    START, ACCEPT = -1, -2
    edges: Edge = {}
    _edge_union(edges, (START, nfa.start), ast.Empty())
    for final in nfa.finals:
        _edge_union(edges, (final, ACCEPT), ast.Empty())
    for source in range(n):
        for label, targets in nfa.trans[source].items():
            for target in targets:
                _edge_union(edges, (source, target), _label_path(label))
        for target in nfa.eps[source]:
            _edge_union(edges, (source, target), ast.Empty())

    for victim in range(n):
        loop = edges.pop((victim, victim), None)
        incoming = [
            (source, path)
            for (source, target), path in list(edges.items())
            if target == victim and source != victim
        ]
        outgoing = [
            (target, path)
            for (source, target), path in list(edges.items())
            if source == victim and target != victim
        ]
        for source, in_path in incoming:
            del edges[(source, victim)]
        for target, _out in outgoing:
            del edges[(victim, target)]
        if not incoming or not outgoing:
            continue
        middle: ast.Path | None = (
            ast.Star(loop) if loop is not None and loop != ast.Empty() else None
        )
        for source, in_path in incoming:
            for target, out_path in outgoing:
                combined = in_path
                if middle is not None:
                    combined = _concat(combined, middle)
                combined = _concat(combined, out_path)
                _edge_union(edges, (source, target), combined)

    result = edges.get((START, ACCEPT))
    if result is None:
        # The automaton accepts nothing.
        return ast.Filtered(ast.Empty(), ast.Not(ast.Exists(ast.Empty())))
    return simplify(result)


def _concat(left: ast.Path, right: ast.Path) -> ast.Path:
    if isinstance(left, ast.Empty):
        return right
    if isinstance(right, ast.Empty):
        return left
    return ast.Concat(left, right)


def mfa_to_xreg(mfa: MFA) -> ast.Path:
    """Theorem 4.1, automaton→query direction (filter-free MFAs)."""
    return eliminate_states(mfa.nfa)
