"""SMOQE reproduction — rewriting regular XPath queries on XML views.

A from-scratch Python implementation of Fan, Geerts, Jia & Kementsietsidis,
*Rewriting Regular XPath Queries on XML Views* (ICDE 2007): the regular
XPath language ``Xreg``, annotated-DTD XML views, mixed finite state
automata (MFA), the polynomial MFA rewriting algorithm, the single-pass
HyPE evaluator with its OptHyPE index variants, and the SMOQE engine that
answers queries over virtual (possibly recursive) XML views.

Quickstart::

    from repro import SMOQE, sigma0, generate_hospital_document, HospitalConfig

    doc = generate_hospital_document(HospitalConfig(num_patients=50, seed=1))
    engine = SMOQE(doc)
    engine.register_view("research", sigma0())
    answer = engine.answer("research", "(patient/parent)*/patient[record]")
    print(answer.ids())
"""

from .automata import MFA, compile_query, conceptual_eval
from .dtd import (
    DTD,
    GeneratorConfig,
    generate_document,
    hospital_dtd,
    hospital_view_dtd,
    is_recursive,
    parse_dtd,
    validate,
)
from .engine import QueryAnswer, SMOQE
from .errors import ReproError
from .hype import (
    HYPE,
    OPTHYPE,
    OPTHYPE_C,
    CompiledPlan,
    HyPEResult,
    build_index,
    compile_plan,
    evaluate_hype,
    hype_eval,
)
from .rewrite import rewrite_query, rewrite_to_xreg
from .views import (
    AccessPolicy,
    MaterializedView,
    ViewSpec,
    copy_view,
    derive_view,
    materialize,
    sigma0,
    view_spec,
)
from .workloads import HospitalConfig, generate_hospital_document
from .xpath import evaluate, parse_query, unparse
from .xtree import XMLTree, document, element, parse_xml, serialize, text_node

__version__ = "1.0.0"

__all__ = [
    # engine
    "SMOQE",
    "QueryAnswer",
    # language
    "parse_query",
    "unparse",
    "evaluate",
    # trees
    "XMLTree",
    "parse_xml",
    "serialize",
    "document",
    "element",
    "text_node",
    # DTDs
    "DTD",
    "parse_dtd",
    "validate",
    "is_recursive",
    "hospital_dtd",
    "hospital_view_dtd",
    "generate_document",
    "GeneratorConfig",
    # views
    "ViewSpec",
    "view_spec",
    "copy_view",
    "materialize",
    "MaterializedView",
    "sigma0",
    "AccessPolicy",
    "derive_view",
    # automata + rewriting
    "MFA",
    "compile_query",
    "conceptual_eval",
    "rewrite_query",
    "rewrite_to_xreg",
    # evaluation
    "hype_eval",
    "evaluate_hype",
    "CompiledPlan",
    "compile_plan",
    "HyPEResult",
    "build_index",
    "HYPE",
    "OPTHYPE",
    "OPTHYPE_C",
    # workloads
    "HospitalConfig",
    "generate_hospital_document",
    # errors
    "ReproError",
    "__version__",
]
