"""Command-line interface to the SMOQE reproduction.

Usage (``python -m repro.cli <command> ...``):

* ``generate  --patients N --seed S [--out FILE]`` — emit a hospital document
* ``validate  DOC.xml DTD.txt`` — check DTD conformance
* ``query     DOC.xml QUERY [--algorithm hype|opthype|opthype-c]`` — run a
  (regular) XPath query, print answer count and node paths
* ``materialize SPEC.view DOC.xml [--out FILE]`` — materialise a view
* ``view-query  SPEC.view DOC.xml QUERY`` — answer a query on the virtual
  view (rewrite + HyPE, no materialisation)
* ``rewrite     SPEC.view QUERY [--to xreg|mfa]`` — show a rewriting
* ``serve-batch DOC.xml QUERY [QUERY ...] [--spec SPEC.view]`` — answer
  many queries in ONE shared document pass (batched HyPE); with a spec
  the queries are view queries, without they run on the source directly
* ``bench-serve [--patients N --tenants T --requests R]`` — run the
  multi-tenant hospital traffic workload sequentially and batched and
  print a comparison table
* ``warm --plan-dir DIR [--gc [--doc-dir DIR]] [--spec SPEC.view]
  [QUERY ...]`` — precompile queries (default: the hospital traffic
  workload's) into a persistent plan store, so services booted with the
  same ``--plan-dir`` skip the MFA rewrites entirely (``serve-batch``,
  ``bench-serve``, ``serve-front`` and ``bench-front`` all accept
  ``--plan-dir``); ``--gc`` first reclaims stale/corrupt artifact files
  (with ``--doc-dir`` it also sweeps stale document-tier files).  The
  analogous ``--doc-dir`` (same four commands) persists built OptHyPE
  document indexes and binary layout sidecars keyed by content hash, so
  a restart also skips index and layout construction
* ``serve-front [--document DOC.xml] [--host H --port P]`` — boot the
  asyncio NDJSON socket front-end (per-wave admission control in front
  of the query service; ``--pool-size`` bounds concurrent evaluations,
  ``--max-pending`` caps in-flight queries per connection); ``--smoke``
  instead boots it on an ephemeral port, runs a scripted wave through
  the client helper and checks the reply stream (the CI front-smoke
  target)
* ``bench-front [--requests R --gap-ms G] [--workload
  hospital|multidoc]`` — replay the seeded traffic stream through the
  admission controller with inter-arrival jitter and compare coalesced
  waves against per-request sequential submits; ``--workload multidoc``
  replays the two-document stream (hospital + deep-recursion ontology)
  with per-request document routing and tenant catalogs
* ``serve-fleet --workers N [--plan-dir DIR --doc-dir DIR]`` — boot the
  multi-process fleet: one acceptor routing requests to N worker
  processes by consistent-hashing each request's document hash; workers
  share the plan and document tiers, so a cold worker starts with zero
  MFA rewrites and zero index builds
* observability: ``serve-front`` and ``bench-front`` accept
  ``--trace-sample RATE`` (request tracing; errored/slow traces always
  kept), ``--slow-ms MS`` (slow-query threshold for trace retention and
  the slow log) and ``--access-log FILE`` (trace-correlated NDJSON
  access log); ``serve-front --obs-smoke`` runs the observability smoke
  (Prometheus exposition parses, trace op returns complete span trees,
  slow log is valid NDJSON — the CI obs-smoke target)
* ``obs --host H --port P [P ...] [--limit N] [--prometheus]`` — fetch
  and pretty-print recent traces (span trees with durations and
  attributes) or the Prometheus text exposition from a running
  ``serve-front``; with ``--prometheus`` and several ports the
  expositions are merged into one (per-worker series stay distinct via
  the ``worker`` label)

View-spec file format (see ``examples/research.view`` written by tests)::

    source <<<
    root hospital
    hospital -> department*
    ...
    >>>
    view <<<
    root hospital
    hospital -> patient*
    ...
    >>>
    hospital patient = department/patient[...]
    patient parent = parent
"""

from __future__ import annotations

import argparse
import sys

from .dtd.parse import parse_dtd
from .dtd.validate import validate
from .serve.frontend import DEFAULT_MAX_PENDING
from .serve.pool import DEFAULT_POOL_SIZE
from .engine.smoqe import SMOQE
from .errors import ReproError
from .hype.api import ALGORITHMS, HYPE
from .rewrite.direct import rewrite_to_xreg
from .rewrite.mfa_rewrite import rewrite_query
from .views.materialize import materialize
from .views.spec import ViewSpec, view_spec
from .workloads.hospital import HospitalConfig, generate_hospital_document
from .xpath.parser import parse_query
from .xpath.unparse import unparse
from .xtree.node import Node
from .xtree.parse import parse_xml
from .xtree.serialize import serialize
from .xtree.stats import tree_stats


def parse_view_spec_file(text: str) -> ViewSpec:
    """Parse the ``.view`` file format (see module docstring)."""
    source_dtd, view_dtd = None, None
    annotations: dict[tuple[str, str], str] = {}
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line or line.startswith("#"):
            continue
        if line.startswith(("source", "view")) and line.endswith("<<<"):
            kind = line.split()[0]
            block: list[str] = []
            while index < len(lines) and lines[index].strip() != ">>>":
                block.append(lines[index])
                index += 1
            index += 1  # skip '>>>'
            dtd = parse_dtd("\n".join(block))
            if kind == "source":
                source_dtd = dtd
            else:
                view_dtd = dtd
            continue
        if "=" in line:
            left, query = line.split("=", 1)
            parts = left.split()
            if len(parts) != 2:
                raise ReproError(
                    f"bad annotation line (need 'PARENT CHILD = query'): {line!r}"
                )
            annotations[(parts[0], parts[1])] = query.strip()
            continue
        raise ReproError(f"unrecognised view-spec line: {line!r}")
    if source_dtd is None or view_dtd is None:
        raise ReproError("view-spec file needs both source<<<>>> and view<<<>>>")
    return view_spec(source_dtd, view_dtd, annotations)


def _node_path(node: Node) -> str:
    parts = [node.label]
    parts.extend(a.label for a in node.iter_ancestors())
    return "/" + "/".join(reversed(parts))


def _print_answers(nodes, limit: int = 10) -> None:
    ordered = sorted(nodes, key=lambda n: n.node_id)
    print(f"{len(ordered)} answer(s)")
    for node in ordered[:limit]:
        text = node.text()
        suffix = f"  {text!r}" if text else ""
        print(f"  node {node.node_id}: {_node_path(node)}{suffix}")
    if len(ordered) > limit:
        print(f"  ... and {len(ordered) - limit} more")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    doc = generate_hospital_document(
        HospitalConfig(num_patients=args.patients, seed=args.seed)
    )
    xml = serialize(doc, indent=1 if args.pretty else None)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(xml)
        print(f"wrote {args.out}: {tree_stats(doc).describe()}")
    else:
        print(xml)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    with open(args.document) as handle:
        tree = parse_xml(handle.read())
    with open(args.dtd) as handle:
        dtd = parse_dtd(handle.read())
    validate(tree, dtd)
    print(f"valid: {tree_stats(tree).describe()}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    with open(args.document) as handle:
        tree = parse_xml(handle.read())
    engine = SMOQE(tree, default_algorithm=args.algorithm)
    answer = engine.evaluate(args.query)
    _print_answers(answer.nodes)
    print(
        f"visited {answer.stats.visited_elements}/{tree.element_count} "
        f"elements, |M| = {answer.mfa.size()}"
    )
    return 0


def cmd_materialize(args: argparse.Namespace) -> int:
    with open(args.spec) as handle:
        spec = parse_view_spec_file(handle.read())
    with open(args.document) as handle:
        tree = parse_xml(handle.read())
    view = materialize(spec, tree)
    xml = serialize(view.tree, indent=1 if args.pretty else None)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(xml)
        print(f"wrote {args.out}: {tree_stats(view.tree).describe()}")
    else:
        print(xml)
    return 0


def cmd_view_query(args: argparse.Namespace) -> int:
    with open(args.spec) as handle:
        spec = parse_view_spec_file(handle.read())
    with open(args.document) as handle:
        tree = parse_xml(handle.read())
    engine = SMOQE(tree, default_algorithm=args.algorithm)
    engine.register_view("view", spec)
    answer = engine.answer("view", args.query)
    _print_answers(answer.nodes)
    print(f"rewritten |M| = {answer.mfa.size()}")
    return 0


def cmd_rewrite(args: argparse.Namespace) -> int:
    with open(args.spec) as handle:
        spec = parse_view_spec_file(handle.read())
    query = parse_query(args.query)
    if args.to == "xreg":
        rewritten = rewrite_to_xreg(spec, query)
        print(unparse(rewritten))
        print(f"size: {rewritten.size()} AST nodes", file=sys.stderr)
    else:
        mfa = rewrite_query(spec, query)
        for key, value in mfa.stats().items():
            print(f"{key}: {value}")
    return 0


def _plan_store(args: argparse.Namespace):
    """The on-disk plan tier behind ``--plan-dir`` (``None`` without it)."""
    plan_dir = getattr(args, "plan_dir", None)
    if not plan_dir:
        return None
    from .compile.store import PlanStore

    return PlanStore(plan_dir)


def _document_store(args: argparse.Namespace):
    """The document store behind ``--doc-dir`` (``None`` without it).

    The store shares parsed documents and their OptHyPE indexes across
    every service of the process, and persists built indexes under the
    directory so a restart skips index construction for
    previously-seen documents.
    """
    doc_dir = getattr(args, "doc_dir", None)
    if not doc_dir:
        return None
    from .docstore import DocumentStore

    return DocumentStore(index_dir=doc_dir)


def cmd_serve_batch(args: argparse.Namespace) -> int:
    from .serve.service import QueryRequest, QueryService

    doc_store = _document_store(args)
    with open(args.document) as handle:
        content = handle.read()
    if doc_store is not None:
        # Content-addressed: the parse and the index builds are shared
        # with (and persisted for) every other holder of this document.
        document = doc_store.get(content)
    else:
        document = parse_xml(content)
    service = QueryService(
        document,
        default_algorithm=args.algorithm,
        plan_store=_plan_store(args),
        document_store=doc_store,
    )
    if args.spec:
        with open(args.spec) as handle:
            spec = parse_view_spec_file(handle.read())
        service.register_view("view", spec)
        service.register_tenant("cli", "view")
    else:
        service.register_tenant("cli", None)
    requests = [QueryRequest("cli", query) for query in args.queries]
    answers, stats = service.submit_many(requests)
    for query, answer in zip(args.queries, answers):
        print(f"query: {query}")
        _print_answers(answer.nodes, limit=args.limit)
    print(
        f"batched {len(requests)} query(ies) in {stats.lanes} lane(s): "
        f"visited {stats.visited_elements} element(s) in one shared pass "
        f"vs {stats.sequential_visited} sequentially "
        f"(saved {stats.saved_visits})"
    )
    if args.plan_dir or args.doc_dir:
        # Surface the tier accounting so a warm restart is verifiable
        # from the outside (the warm-restart smoke greps these lines).
        print(service.metrics_snapshot().describe())
    service.close()
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from .bench.tables import format_series
    from .bench.timing import measure
    from .serve.service import QueryRequest, QueryService
    from .workloads.traffic import (
        TrafficConfig,
        generate_traffic,
        register_tenants,
        waves,
    )

    if args.wave < 1:
        raise ReproError(f"--wave must be >= 1, got {args.wave}")
    document = generate_hospital_document(
        HospitalConfig(num_patients=args.patients, seed=args.seed)
    )
    config = TrafficConfig(
        num_tenants=args.tenants, num_requests=args.requests, seed=args.seed
    )
    traffic = generate_traffic(config)

    store = _plan_store(args)
    doc_store = _document_store(args)

    def fresh_service() -> QueryService:
        # All runs share the stores (when given): the first compiles and
        # persists, the rest rehydrate — exactly a restart's behaviour.
        service = QueryService(
            document, plan_store=store, document_store=doc_store
        )
        register_tenants(service, config)
        return service

    sequential = fresh_service()
    seq_timing = measure(
        lambda: [
            sequential.submit(request.tenant, request.query)
            for request in traffic
        ],
        repeats=args.repeats,
    )
    request_waves = [
        [QueryRequest(r.tenant, r.query) for r in wave]
        for wave in waves(traffic, args.wave)
    ]
    batched_timed = fresh_service()
    bat_timing = measure(
        lambda: [batched_timed.submit_many(wave) for wave in request_waves],
        repeats=args.repeats,
    )
    # Counters come from one clean pass so the reported absolutes match
    # the stated workload regardless of --repeats.
    batched = fresh_service()
    for wave in request_waves:
        batched.submit_many(wave)
    bat_snapshot = batched.metrics_snapshot()
    for used in (sequential, batched_timed, batched):
        used.close()
    print(
        format_series(
            f"bench-serve: {len(traffic)} requests, "
            f"{args.tenants} tenants, wave size {args.wave}",
            row_labels=["sequential", "batched"],
            columns={"total": [seq_timing.best, bat_timing.best]},
            extra={
                "visited": [
                    # Per-request stats are identical either way; the shared
                    # pass is what shrinks the batched traversal count.
                    bat_snapshot.sequential_visited,
                    bat_snapshot.batch_visited,
                ]
            },
        )
    )
    print()
    print("batched run:")
    print(bat_snapshot.describe())
    print()
    print(bat_snapshot.format_table("per-tenant latency (batched)"))
    return 0


def cmd_warm(args: argparse.Namespace) -> int:
    """Precompile a workload's queries into a persistent plan store.

    Compilation is document-independent (the rewrite works over the view
    specification alone), so warming needs no XML input: every process
    later booted with the same ``--plan-dir`` rehydrates these plans
    instead of rewriting.
    """
    from .compile import FORMAT_VERSION, PlanStore, QueryCompiler
    from .serve.cache import PlanCache

    store = PlanStore(args.plan_dir)
    targets: list[tuple[object, str]] = []
    if args.queries:
        spec = None
        if args.spec:
            with open(args.spec) as handle:
                spec = parse_view_spec_file(handle.read())
        targets = [(spec, query) for query in args.queries]
    else:
        if args.spec:
            raise ReproError("--spec without queries; pass the QUERY list too")
        # Default: the multi-tenant hospital traffic workload — σ0 view
        # queries plus the admin tenant's direct Fig. 8 family.
        from .views.samples import sigma0
        from .workloads.queries import FIG8, VIEW_QUERIES

        view = sigma0()
        targets = [(view, query) for _, query in sorted(VIEW_QUERIES.items())]
        targets += [(None, query) for _, query in sorted(FIG8.items())]

    if args.gc:
        removed = store.gc()
        print(
            f"gc: removed {removed} stale/corrupt artifact file(s) "
            f"(non-v{FORMAT_VERSION} or undecodable)"
        )
        doc_dir = getattr(args, "doc_dir", None)
        if doc_dir:
            from .docstore import DOC_FORMAT_VERSION, DocumentStore

            doc_store = DocumentStore(index_dir=doc_dir)
            doc_removed = doc_store.tier.gc()
            print(
                f"gc: removed {doc_removed} stale document-tier file(s) "
                f"from {doc_dir} (non-v{DOC_FORMAT_VERSION} or invalid)"
            )
    compiler = QueryCompiler()
    cache = PlanCache(
        capacity=max(1, len(targets)), store=store, compiler=compiler
    )
    for spec, query in targets:
        cache.plan(spec, query)
    stats = cache.stats
    print(
        f"warmed {args.plan_dir}: {stats.misses} compiled, "
        f"{stats.l2_hits} already stored, {stats.hits} duplicate(s); "
        f"store now holds {len(store)} plan(s) "
        f"(format v{FORMAT_VERSION})"
    )
    for stage, counters in compiler.metrics.snapshot().as_dict().items():
        if counters["count"]:
            print(
                f"  {stage}: {counters['count']}x "
                f"{counters['seconds'] * 1000:.2f} ms"
            )
    return 0


def _front_service(args: argparse.Namespace):
    """Build the (document, service) pair the front-end commands serve."""
    from .serve.service import QueryService
    from .workloads.traffic import TrafficConfig, register_tenants

    if getattr(args, "document", None):
        with open(args.document) as handle:
            tree = parse_xml(handle.read())
    else:
        tree = generate_hospital_document(
            HospitalConfig(num_patients=args.patients, seed=args.seed)
        )
    doc_store = _document_store(args)
    if doc_store is not None:
        tree = doc_store.adopt(tree)
    service = QueryService(
        tree,
        pool_size=args.pool_size,
        plan_store=_plan_store(args),
        document_store=doc_store,
        compose=getattr(args, "compose", False),
    )
    if getattr(args, "spec", None):
        with open(args.spec) as handle:
            spec = parse_view_spec_file(handle.read())
        service.register_view("view", spec)
        service.register_tenant("cli", "view")
        service.register_tenant("admin", None)
    else:
        config = TrafficConfig(num_tenants=args.tenants, seed=args.seed)
        register_tenants(service, config)
    return service


def _admission_config(args: argparse.Namespace):
    from .serve.admission import AdmissionConfig

    return AdmissionConfig(
        max_wave=args.max_wave, max_wait=args.max_wait_ms / 1000.0
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (serve-front and bench-front)."""
    parser.add_argument(
        "--trace-sample",
        type=float,
        default=None,
        metavar="RATE",
        help="enable request tracing, keeping this fraction of traces "
        "(errored and slow traces are always kept)",
    )
    parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        metavar="MS",
        help="slow-query threshold: slower requests are always traced "
        "and logged",
    )
    parser.add_argument(
        "--access-log",
        default=None,
        metavar="FILE",
        help="append one NDJSON entry per request to FILE "
        "(trace-correlated; without it --slow-ms logs slow/errored "
        "requests to stderr)",
    )


def _obs_setup(args: argparse.Namespace):
    """Build the (tracer, access logger) pair the obs flags ask for."""
    from .obs.log import AccessLogger, StructuredLog
    from .obs.trace import Tracer

    slow_seconds = (
        None if args.slow_ms is None else args.slow_ms / 1000.0
    )
    tracer = None
    if args.trace_sample is not None:
        tracer = Tracer(
            sample_rate=args.trace_sample, slow_seconds=slow_seconds
        )
    access_logger = None
    if args.access_log is not None:
        access_logger = AccessLogger(
            StructuredLog(args.access_log),
            slow_seconds=slow_seconds,
            access=True,
        )
    elif slow_seconds is not None:
        access_logger = AccessLogger(
            StructuredLog(sys.stderr), slow_seconds=slow_seconds
        )
    return tracer, access_logger


async def _front_smoke(service, admission) -> int:
    """Boot the server, run a scripted wave, check the reply stream."""
    from .serve.frontend import FrontendClient, QueryFrontend
    from .workloads.traffic import TrafficConfig, generate_traffic

    failures: list[str] = []

    def check(condition: bool, what: str) -> None:
        print(f"[smoke] {'ok' if condition else 'FAIL'}: {what}")
        if not condition:
            failures.append(what)

    frontend = QueryFrontend(service, admission)
    host, port = await frontend.start("127.0.0.1", 0)
    print(f"[smoke] frontend listening on {host}:{port}")
    client = await FrontendClient.connect(host, port)
    try:
        pong = await client.ping()
        check(pong.get("ok") and pong.get("pong"), "ping round trip")

        tenant = service.tenants()[0]
        opened = await client.open_session(tenant)
        check(opened.get("ok") is True, f"open session for {tenant!r}")
        session = opened.get("session")

        traffic = generate_traffic(
            TrafficConfig(num_tenants=2, num_requests=8, seed=5)
        )
        scripted = [
            {"tenant": r.tenant, "query": r.query, "limit": -1}
            for r in traffic
            if r.tenant in service.tenants()
        ]
        replies = await client.query_many(scripted)
        check(
            len(replies) == len(scripted),
            f"every scripted request answered ({len(replies)}/{len(scripted)})",
        )
        check(
            all(reply.get("ok") for reply in replies),
            "all scripted replies ok",
        )
        largest = max(
            (reply["wave"]["size"] for reply in replies if reply.get("ok")),
            default=0,
        )
        check(largest >= 2, f"pipelined burst coalesced (largest wave {largest})")
        for message, reply in zip(scripted, replies):
            expected = service.submit(message["tenant"], message["query"]).ids()
            if reply.get("count") != len(expected) or reply.get("ids") != expected:
                check(False, f"answers match direct submit for {message['query']!r}")
                break
        else:
            check(True, "answers match direct per-request submits")

        in_session = await client.query(tenant, "*", session=session)
        check(in_session.get("ok") is True, "session-scoped query")
        denied = await client.query("stranger", "*")
        check(
            denied.get("ok") is False
            and denied.get("error") == "authorization",
            "unknown tenant rejected as authorization error",
        )
        garbled = await client.query(tenant, "]][[")
        check(
            garbled.get("ok") is False
            and garbled.get("error") == "invalid-query",
            "malformed query rejected as invalid-query",
        )
        closed = await client.close_session(session)
        check(closed.get("ok") is True, "close session")

        metrics = await client.metrics()
        counters = metrics.get("metrics", {})
        check(
            metrics.get("ok") is True and counters.get("waves", 0) >= 1,
            f"metrics report admission waves ({counters.get('waves')})",
        )
        check(
            counters.get("rejected", 0) >= 2,
            "rejections counted (authorization + parse)",
        )
        # Cold boots compile (misses + rewrite stages); a boot over a
        # populated --plan-dir rehydrates instead (L2 hits, no rewrite).
        # Either way the tier and stage counters must be exposed and add
        # up to the plans this run resolved.
        resolved = counters.get("plan_misses", 0) + counters.get(
            "plan_l2_hits", 0
        )
        check(
            resolved >= 1
            and "l2_hits" in counters.get("cache", {})
            and counters.get("compile", {}).get("normalize", {}).get("count", 0)
            >= 1,
            "plan-tier and compile-stage counters exposed",
        )
    finally:
        await client.aclose()
        await frontend.close()
    if failures:
        print(f"[smoke] {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("[smoke] all checks passed")
    return 0


async def _obs_smoke(service, admission) -> int:
    """Boot a traced front-end, replay a burst, check the obs surfaces.

    The CI obs-smoke target: asserts (1) every request produced a
    retained trace whose span tree covers request → admission → plan →
    queue-wait → doc-store → evaluate with children summing within the
    root, (2) the Prometheus exposition parses and its latency
    histogram's ``+Inf`` bucket equals the request counter, (3) the
    access log is valid trace-correlated NDJSON.
    """
    import io
    import json as json_mod

    from .obs.export import parse_exposition
    from .obs.log import AccessLogger, StructuredLog
    from .obs.trace import Tracer, span_roots
    from .serve.frontend import FrontendClient, QueryFrontend
    from .workloads.traffic import TrafficConfig, generate_traffic

    failures: list[str] = []

    def check(condition: bool, what: str) -> None:
        print(f"[obs-smoke] {'ok' if condition else 'FAIL'}: {what}")
        if not condition:
            failures.append(what)

    tracer = Tracer(sample_rate=1.0, slow_seconds=None)
    log_buffer = io.StringIO()
    access_logger = AccessLogger(
        StructuredLog(log_buffer), slow_seconds=0.0, access=True
    )
    frontend = QueryFrontend(
        service, admission, tracer=tracer, access_log=access_logger
    )
    host, port = await frontend.start("127.0.0.1", 0)
    print(f"[obs-smoke] traced frontend listening on {host}:{port}")
    client = await FrontendClient.connect(host, port)
    try:
        traffic = generate_traffic(
            TrafficConfig(num_tenants=2, num_requests=8, seed=5)
        )
        scripted = [
            {"tenant": r.tenant, "query": r.query, "limit": 0}
            for r in traffic
            if r.tenant in service.tenants()
        ]
        replies = await client.query_many(scripted)
        served = sum(1 for reply in replies if reply.get("ok"))
        check(
            served == len(scripted),
            f"burst served under tracing ({served}/{len(scripted)})",
        )

        traced = await client.trace()
        traces = traced.get("traces", [])
        check(
            traced.get("ok") is True and len(traces) == len(scripted),
            f"trace op returns every request's trace ({len(traces)})",
        )
        stage_names = (
            "admission.hold",
            "plan",
            "queue.wait",
            "docstore.resolve",
            "evaluate",
        )
        complete = 0
        for trace in traces:
            roots = span_roots(trace)
            if len(roots) != 1 or roots[0]["name"] != "request":
                continue
            names = {s["name"] for s in trace["spans"]}
            if not all(stage in names for stage in stage_names):
                continue
            root = roots[0]
            child_total = sum(c["duration_ms"] for c in root["children"])
            if child_total <= root["duration_ms"] * 1.001:
                complete += 1
        check(
            complete == len(traces),
            f"complete span trees, children within root ({complete})",
        )
        tiers = {
            s["attributes"].get("tier")
            for trace in traces
            for s in trace["spans"]
            if s["name"] == "plan"
        }
        check(
            tiers and tiers <= {"l1", "l2", "compile"} and "l1" in tiers,
            f"plan spans carry cache-tier annotations ({sorted(tiers)})",
        )

        prom = await client.prometheus()
        try:
            samples = parse_exposition(prom.get("prometheus", ""))
        except ValueError as error:
            samples = {}
            check(False, f"prometheus exposition parses ({error})")
        else:
            check(True, "prometheus exposition parses")
        if samples:
            requests_total = samples.get("repro_requests_total", {}).get("")
            buckets = samples.get("repro_request_latency_seconds_bucket", {})
            inf = buckets.get('le="+Inf"')
            check(
                requests_total is not None and inf == requests_total,
                f"+Inf latency bucket equals request counter "
                f"({inf} == {requests_total})",
            )

        entries = [
            json_mod.loads(line)
            for line in log_buffer.getvalue().splitlines()
            if line
        ]
        check(
            len(entries) == len(scripted),
            f"access log has one NDJSON entry per request ({len(entries)})",
        )
        correlated = sum(
            1
            for entry in entries
            if entry.get("trace_id")
            and any(t["trace_id"] == entry["trace_id"] for t in traces)
        )
        check(
            correlated == len(entries),
            f"every log entry correlates to a retained trace ({correlated})",
        )
        staged = sum(1 for entry in entries if entry.get("stages"))
        check(
            staged == len(entries),
            f"log entries carry stage annotations ({staged})",
        )
    finally:
        await client.aclose()
        await frontend.close()
    if failures:
        print(f"[obs-smoke] {len(failures)} check(s) FAILED", file=sys.stderr)
        return 1
    print("[obs-smoke] all checks passed")
    return 0


def _install_faults(args: argparse.Namespace) -> None:
    """Arm ``--faults PLAN`` (inline JSON or a file path) for this process
    and export it through the environment so spawned fleet workers
    inherit the same seeded schedule."""
    text = getattr(args, "faults", None)
    if not text:
        return
    import os

    from . import faults

    if os.path.exists(text):
        with open(text, "r", encoding="utf-8") as handle:
            text = handle.read()
    plan = faults.FaultPlan.from_json(text)
    faults.install(plan)
    os.environ[faults.ENV_VAR] = plan.to_json()
    points = sorted({rule.point for rule in plan.rules})
    print(
        f"fault injection armed: {', '.join(points)} (seed {plan.seed})",
        flush=True,
    )


def cmd_serve_front(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .serve.frontend import QueryFrontend

    _install_faults(args)
    service = _front_service(args)
    admission = _admission_config(args)
    if args.smoke:
        return asyncio.run(_front_smoke(service, admission))
    if args.obs_smoke:
        return asyncio.run(_obs_smoke(service, admission))
    tracer, access_logger = _obs_setup(args)

    async def _serve() -> None:
        frontend = QueryFrontend(
            service,
            admission,
            max_pending=args.max_pending,
            max_line_bytes=args.max_line_bytes,
            tracer=tracer,
            access_log=access_logger,
        )
        host, port = await frontend.start(args.host, args.port)
        obs_note = ""
        if tracer is not None:
            obs_note = f", trace sample {tracer.sample_rate:g}"
        if access_logger is not None:
            target = access_logger.log.path or "stderr"
            obs_note += f", access log {target}"
        print(
            f"frontend listening on {host}:{port} "
            f"(tenants: {', '.join(service.tenants())}; "
            f"max wave {admission.max_wave}, "
            f"max wait {admission.max_wait * 1000:.0f} ms, "
            f"pool size {service.pool.size}, "
            f"max pending/conn {args.max_pending}{obs_note})",
            flush=True,
        )
        # Graceful drain on SIGTERM: refuse new admissions, finish every
        # in-flight wave, flush the access log — what a fleet restart
        # (or any supervisor) needs from a worker.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        async def _drain() -> None:
            print("draining: refusing new admissions", flush=True)
            await frontend.drain()
            stop.set()

        try:
            loop.add_signal_handler(
                signal.SIGTERM,
                lambda: asyncio.ensure_future(_drain()),
            )
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
        server = asyncio.create_task(frontend.serve_forever())
        try:
            await stop.wait()
            print("drained: all in-flight requests flushed", flush=True)
        finally:
            server.cancel()
            await asyncio.gather(server, return_exceptions=True)
            await frontend.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("frontend stopped")
    return 0


def cmd_serve_fleet(args: argparse.Namespace) -> int:
    """Boot the multi-process fleet: one acceptor, N workers."""
    import asyncio
    import signal

    from .serve.fleet import FleetAcceptor, FleetSpec
    from .workloads.multidoc import MultiDocConfig

    _install_faults(args)
    config = MultiDocConfig(
        patients=args.patients,
        tenants=args.tenants,
        terms=args.terms,
        seed=args.seed,
        algorithm=args.algorithm,
    )
    spec = FleetSpec(
        config=config.as_dict(),
        plan_dir=args.plan_dir,
        doc_dir=args.doc_dir,
        pool_size=args.pool_size,
        max_wave=args.max_wave,
        max_wait_ms=args.max_wait_ms,
        access_log=args.access_log,
    )

    async def _serve() -> None:
        acceptor = FleetAcceptor(
            spec,
            workers=args.workers,
            request_timeout=args.request_timeout,
            breaker_threshold=args.breaker_threshold,
            backoff_base=args.backoff_base,
            backoff_cap=args.backoff_cap,
        )
        host, port = await acceptor.start(args.host, args.port)
        shards = {
            doc_hash[:12]: acceptor.ring.node_for(doc_hash)
            for doc_hash in sorted(acceptor.documents)
        }
        print(
            f"fleet acceptor listening on {host}:{port} "
            f"({args.workers} worker(s); documents {shards}; "
            f"plan dir {args.plan_dir or '-'}, doc dir {args.doc_dir or '-'})",
            flush=True,
        )
        # Graceful drain on SIGTERM, mirroring serve-front: stop
        # accepting, flush every acknowledged request, SIGTERM the
        # workers (they drain in-process), exit 0.  Before this the
        # acceptor died hard and dropped whatever was in flight.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        async def _drain() -> None:
            print("draining: refusing new connections", flush=True)
            await acceptor.drain()
            stop.set()

        try:
            loop.add_signal_handler(
                signal.SIGTERM,
                lambda: asyncio.ensure_future(_drain()),
            )
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            pass
        server = asyncio.create_task(acceptor.serve_forever())
        try:
            await stop.wait()
            print("drained: fleet stopped cleanly", flush=True)
        finally:
            server.cancel()
            await asyncio.gather(server, return_exceptions=True)
            await acceptor.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("fleet stopped")
    return 0


def cmd_bench_front(args: argparse.Namespace) -> int:
    import asyncio
    import time

    from .serve.admission import AdmissionController
    from .serve.service import QueryRequest, QueryService
    from .workloads.traffic import (
        ArrivalConfig,
        TrafficConfig,
        generate_traffic,
        register_tenants,
    )
    from .bench.tables import format_series

    if getattr(args, "workload", "hospital") == "multidoc":
        # The two-document stream: research tenants on the hospital
        # tree, curators on the deep-recursion ontology, admin on both —
        # every request carries its document's content hash.
        from .workloads.multidoc import (
            MultiDocConfig,
            build_multidoc_service,
            generate_multidoc_traffic,
        )

        multidoc = MultiDocConfig(
            patients=args.patients,
            tenants=args.tenants,
            seed=args.seed,
            num_requests=args.requests,
        )
        sequential, hashes = build_multidoc_service(multidoc)
        traffic = generate_multidoc_traffic(multidoc, hashes)
        front, _ = build_multidoc_service(
            multidoc,
            pool_size=args.pool_size,
            plan_store=_plan_store(args),
            document_store=_document_store(args),
            compose=args.compose,
        )
    elif getattr(args, "workload", "hospital") == "skew":
        # The Zipf-hot stream: every tenant hammering one of N same-shape
        # documents, most draws landing on the rank-0 hot key.
        from .workloads.skew import (
            SkewConfig,
            build_skew_service,
            generate_skew_traffic,
        )

        skew = SkewConfig(
            patients=args.patients,
            tenants=args.tenants,
            seed=args.seed,
            num_requests=args.requests,
        )
        sequential, hashes = build_skew_service(skew)
        traffic = generate_skew_traffic(skew, hashes)
        front, _ = build_skew_service(
            skew,
            pool_size=args.pool_size,
            plan_store=_plan_store(args),
            document_store=_document_store(args),
            compose=args.compose,
        )
    elif getattr(args, "workload", "hospital") == "adversarial":
        # The malicious-tenant stream: rewrite bombs salted into honest
        # traffic.  Bombs are EXPECTED to be rejected query-too-complex,
        # so both replay paths below count them instead of failing.
        from .workloads.adversarial import (
            AdversarialConfig,
            build_adversarial_service,
            generate_adversarial_traffic,
        )

        adversarial_cfg = AdversarialConfig(
            patients=args.patients,
            tenants=args.tenants,
            seed=args.seed,
            num_requests=args.requests,
        )
        sequential, hashes = build_adversarial_service(adversarial_cfg)
        traffic = generate_adversarial_traffic(adversarial_cfg, hashes)
        front, _ = build_adversarial_service(
            adversarial_cfg,
            pool_size=args.pool_size,
            plan_store=_plan_store(args),
            document_store=_document_store(args),
            compose=args.compose,
        )
    else:
        document = generate_hospital_document(
            HospitalConfig(num_patients=args.patients, seed=args.seed)
        )
        config = TrafficConfig(
            num_tenants=args.tenants,
            num_requests=args.requests,
            seed=args.seed,
        )
        traffic = generate_traffic(config)

        # Per-request sequential baseline: each request pays its own pass.
        sequential = QueryService(document)
        register_tenants(sequential, config)

        # Front-end replay: jittered arrivals coalesce into waves.
        front = QueryService(
            document,
            pool_size=args.pool_size,
            plan_store=_plan_store(args),
            document_store=_document_store(args),
            compose=args.compose,
        )
        register_tenants(front, config)

    adversarial = getattr(args, "workload", "hospital") == "adversarial"
    seq_started = time.perf_counter()
    seq_answers = []
    seq_rejected = 0
    for r in traffic:
        try:
            seq_answers.append(
                sequential.submit(r.tenant, r.query, document=r.document)
            )
        except ReproError:
            if not adversarial:
                raise
            seq_rejected += 1
    seq_elapsed = time.perf_counter() - seq_started
    seq_visited = sum(a.stats.visited_elements for a in seq_answers)

    controller = AdmissionController(front, _admission_config(args))
    arrivals = ArrivalConfig(
        mean_gap=args.gap_ms / 1000.0, jitter=args.jitter, seed=args.seed
    )
    tracer, access_logger = _obs_setup(args)

    async def submit_one(r):
        request = QueryRequest(r.tenant, r.query, document=r.document)
        if tracer is None and access_logger is None:
            return await controller.submit(request)
        started = time.perf_counter()
        if tracer is not None:
            with tracer.trace(
                "request", tenant=r.tenant, query=r.query
            ) as root:
                admitted = await controller.submit(request)
        else:
            root = None
            admitted = await controller.submit(request)
        if access_logger is not None:
            from .obs.trace import Tracer as _Tracer

            trace = (
                None
                if root is None
                else _Tracer.export_trace(root.trace, root, "inline")
            )
            access_logger.record(
                tenant=r.tenant,
                query=r.query,
                duration=time.perf_counter() - started,
                trace=trace,
            )
        return admitted

    async def replay() -> list:
        from .workloads.traffic import replay_async

        return await replay_async(submit_one, traffic, arrivals)

    front_started = time.perf_counter()
    outcomes = asyncio.run(replay())
    front_elapsed = time.perf_counter() - front_started
    errors = [o for o in outcomes if isinstance(o, BaseException)]
    front_rejected = 0
    if adversarial:
        # Structured rejections (the bombs) are the expected outcome;
        # anything else is still a genuine failure.
        front_rejected = sum(1 for e in errors if isinstance(e, ReproError))
        errors = [e for e in errors if not isinstance(e, ReproError)]
    if errors:
        raise ReproError(f"front-end replay failed: {errors[0]}")
    snapshot = front.metrics_snapshot()
    poison = None
    if adversarial:
        from .workloads.adversarial import poison_attempt

        poison = poison_attempt(front)
    sequential.close()
    front.close()
    print(
        format_series(
            f"bench-front: {len(traffic)} requests, {args.tenants} tenants, "
            f"gap {args.gap_ms:.1f} ms, max wave {args.max_wave}",
            row_labels=["per-request", "front-end"],
            columns={"wall": [seq_elapsed, front_elapsed]},
            extra={
                "visited": [seq_visited, snapshot.batch_visited],
                "waves": [len(traffic), snapshot.waves],
            },
        )
    )
    print()
    print(
        f"admission: mean wave size "
        f"{snapshot.mean_wave_size:.2f} "
        f"(largest {snapshot.largest_wave}), "
        f"visited {snapshot.batch_visited} vs {seq_visited} "
        f"per-request element(s) "
        f"(saved {seq_visited - snapshot.batch_visited})"
    )
    if adversarial:
        from .workloads.adversarial import is_bomb

        bombs = sum(1 for r in traffic if is_bomb(r))
        kinds = snapshot.rejected_kinds
        too_complex = kinds.get("query-too-complex", 0)
        if front_rejected != bombs or too_complex != bombs:
            raise ReproError(
                f"adversarial stream expected {bombs} query-too-complex "
                f"rejection(s), saw {front_rejected} "
                f"(kinds: {kinds})"
            )
        print()
        print(
            f"adversarial: {bombs} rewrite bomb(s) rejected "
            f"query-too-complex on both paths "
            f"(sequential {seq_rejected}, front-end {front_rejected}); "
            f"poison canary before={poison['before']} "
            f"poisoned={poison['poisoned']} after={poison['after']} "
            f"isolated={poison['isolated']}"
        )
        if not poison["isolated"]:
            raise ReproError("cache poisoning crossed a view fingerprint")
    print()
    print(snapshot.describe())
    if tracer is not None:
        print()
        print(
            f"tracing: {tracer.started} trace(s) started, "
            f"{tracer.store.kept} kept "
            f"(sample rate {tracer.sample_rate:g})"
        )
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Fetch and pretty-print traces (or metrics) from a live front-end."""
    import asyncio

    from .obs.trace import span_roots
    from .serve.frontend import FrontendClient

    def render_span(node: dict, depth: int) -> None:
        pad = "  " * depth
        attrs = " ".join(
            f"{key}={value}" for key, value in node["attributes"].items()
        )
        line = (
            f"{pad}{node['name']}  {node['duration_ms']:.2f} ms"
            f"{'  ' + attrs if attrs else ''}"
        )
        if node["error"]:
            line += f"  ERROR: {node['error']}"
        print(line)
        for child in node["children"]:
            render_span(child, depth + 1)

    ports = args.port if isinstance(args.port, list) else [args.port]

    async def fetch() -> int:
        if getattr(args, "fleet", False):
            # Per-worker resilience view from a fleet acceptor: liveness,
            # restart counts, and each worker's circuit-breaker state.
            client = await FrontendClient.connect(args.host, ports[0])
            try:
                reply = await client.request({"op": "fleet"})
            finally:
                await client.aclose()
            if reply.get("ok") is not True:
                print(f"error: {reply.get('message')}", file=sys.stderr)
                return 1
            workers = reply.get("workers", {})
            print(
                f"fleet: {len(workers)} worker(s), "
                f"{reply.get('restarts', 0)} restart(s), "
                f"{reply.get('reroutes', 0)} reroute(s), "
                f"{reply.get('timeouts', 0)} timeout(s)"
            )
            header = (
                f"{'worker':<12} {'pid':>7} {'port':>6} {'alive':>5} "
                f"{'restarts':>8} {'breaker':>9} {'fails':>5} "
                f"{'backoff-ms':>10}"
            )
            print(header)
            for name in sorted(workers):
                info = workers[name]
                breaker = info.get("breaker", {})
                print(
                    f"{name:<12} {info.get('pid') or '-':>7} "
                    f"{info.get('port') or '-':>6} "
                    f"{str(bool(info.get('alive'))).lower():>5} "
                    f"{info.get('restarts', 0):>8} "
                    f"{breaker.get('state', '-'):>9} "
                    f"{breaker.get('consecutive_failures', 0):>5} "
                    f"{breaker.get('backoff_ms', 0):>10.0f}"
                )
            return 0
        if args.prometheus:
            # Fetch every port's exposition and merge them into one
            # (fleet workers each export their own, labelled source).
            from .obs.export import merge_expositions

            texts = []
            for port in ports:
                client = await FrontendClient.connect(args.host, port)
                try:
                    reply = await client.prometheus()
                finally:
                    await client.aclose()
                if reply.get("ok") is not True:
                    print(f"error: {reply.get('message')}", file=sys.stderr)
                    return 1
                texts.append(reply["prometheus"])
            print(merge_expositions(texts) if len(texts) > 1 else texts[0], end="")
            return 0
        client = await FrontendClient.connect(args.host, ports[0])
        try:
            reply = await client.trace(limit=args.limit)
            if reply.get("ok") is not True:
                print(f"error: {reply.get('message')}", file=sys.stderr)
                return 1
            traces = reply.get("traces", [])
            print(
                f"{len(traces)} trace(s) "
                f"(kept {reply.get('kept')}, dropped {reply.get('dropped')}, "
                f"started {reply.get('started')})"
            )
            for trace in traces:
                print()
                print(
                    f"trace {trace['trace_id']}  {trace['duration_ms']:.2f} ms"
                    f"  kept={trace['kept']}  spans={len(trace['spans'])}"
                )
                for root in span_roots(trace):
                    render_span(root, 1)
            return 0
        finally:
            await client.aclose()

    return asyncio.run(fetch())


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a hospital document")
    gen.add_argument("--patients", type=int, default=50)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out")
    gen.add_argument("--pretty", action="store_true")
    gen.set_defaults(func=cmd_generate)

    val = sub.add_parser("validate", help="validate a document against a DTD")
    val.add_argument("document")
    val.add_argument("dtd")
    val.set_defaults(func=cmd_validate)

    qry = sub.add_parser("query", help="run a (regular) XPath query")
    qry.add_argument("document")
    qry.add_argument("query")
    qry.add_argument("--algorithm", choices=ALGORITHMS, default=HYPE)
    qry.set_defaults(func=cmd_query)

    mat = sub.add_parser("materialize", help="materialise a view")
    mat.add_argument("spec")
    mat.add_argument("document")
    mat.add_argument("--out")
    mat.add_argument("--pretty", action="store_true")
    mat.set_defaults(func=cmd_materialize)

    vq = sub.add_parser("view-query", help="answer a query on a virtual view")
    vq.add_argument("spec")
    vq.add_argument("document")
    vq.add_argument("query")
    vq.add_argument("--algorithm", choices=ALGORITHMS, default=HYPE)
    vq.set_defaults(func=cmd_view_query)

    rwr = sub.add_parser("rewrite", help="show the rewriting of a view query")
    rwr.add_argument("spec")
    rwr.add_argument("query")
    rwr.add_argument("--to", choices=("xreg", "mfa"), default="mfa")
    rwr.set_defaults(func=cmd_rewrite)

    srv = sub.add_parser(
        "serve-batch", help="answer many queries in one shared document pass"
    )
    srv.add_argument("document")
    srv.add_argument("queries", nargs="+", metavar="QUERY")
    srv.add_argument("--spec", help="view-spec file; queries become view queries")
    srv.add_argument("--algorithm", choices=ALGORITHMS, default=HYPE)
    srv.add_argument("--limit", type=int, default=10)
    srv.add_argument(
        "--plan-dir",
        help="persistent plan store directory (restarts reuse compiled plans)",
    )
    srv.add_argument(
        "--doc-dir",
        help="persistent document-index directory (restarts reuse "
        "OptHyPE indexes; documents shared by content hash)",
    )
    srv.set_defaults(func=cmd_serve_batch)

    wrm = sub.add_parser(
        "warm", help="precompile queries into a persistent plan store"
    )
    wrm.add_argument(
        "--plan-dir", required=True, help="plan store directory to populate"
    )
    wrm.add_argument(
        "--spec", help="view-spec file the QUERY list rewrites over"
    )
    wrm.add_argument(
        "queries",
        nargs="*",
        metavar="QUERY",
        help="queries to precompile (default: the hospital traffic workload)",
    )
    wrm.add_argument(
        "--gc",
        action="store_true",
        help="first remove stale (old-format) and corrupt artifact files",
    )
    wrm.add_argument(
        "--doc-dir",
        help="document-tier directory to sweep as well when --gc is given "
        "(stale index/layout files of old format versions)",
    )
    wrm.set_defaults(func=cmd_warm)

    bsv = sub.add_parser(
        "bench-serve", help="multi-tenant traffic: sequential vs batched"
    )
    bsv.add_argument("--patients", type=int, default=60)
    bsv.add_argument("--seed", type=int, default=0)
    bsv.add_argument("--tenants", type=int, default=4)
    bsv.add_argument("--requests", type=int, default=24)
    bsv.add_argument("--wave", type=int, default=8)
    bsv.add_argument("--repeats", type=int, default=3)
    bsv.add_argument(
        "--plan-dir",
        help="persistent plan store shared by the benchmark's services",
    )
    bsv.add_argument(
        "--doc-dir",
        help="persistent document-index directory shared by the services",
    )
    bsv.set_defaults(func=cmd_bench_serve)

    sfr = sub.add_parser(
        "serve-front",
        help="boot the asyncio NDJSON front-end with admission control",
    )
    sfr.add_argument("--document", help="XML file to serve (default: generated)")
    sfr.add_argument("--spec", help="view-spec file (registers tenant 'cli')")
    sfr.add_argument("--patients", type=int, default=60)
    sfr.add_argument("--seed", type=int, default=0)
    sfr.add_argument("--tenants", type=int, default=4)
    sfr.add_argument("--host", default="127.0.0.1")
    sfr.add_argument("--port", type=int, default=7407)
    sfr.add_argument("--max-wave", type=int, default=8)
    sfr.add_argument("--max-wait-ms", type=float, default=20.0)
    sfr.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help="bound on concurrently evaluating waves/requests",
    )
    sfr.add_argument(
        "--max-pending",
        type=int,
        default=DEFAULT_MAX_PENDING,
        help="per-connection cap on in-flight queries (backpressure)",
    )
    sfr.add_argument(
        "--max-line-bytes",
        type=int,
        default=1 << 20,
        help="cap on one NDJSON request line; oversized lines get a "
        "structured invalid-request reply and the connection closes",
    )
    sfr.add_argument(
        "--faults",
        help="fault-injection plan (inline JSON or a file path); "
        "deterministic, inert unless set",
    )
    sfr.add_argument(
        "--plan-dir",
        help="persistent plan store directory (restarts start warm)",
    )
    sfr.add_argument(
        "--doc-dir",
        help="persistent document-index directory (restarts skip index builds)",
    )
    sfr.add_argument(
        "--compose",
        action="store_true",
        help="step same-view wave groups as one composed automaton",
    )
    sfr.add_argument(
        "--smoke",
        action="store_true",
        help="boot on an ephemeral port, run a scripted wave, check replies",
    )
    sfr.add_argument(
        "--obs-smoke",
        action="store_true",
        help="boot traced on an ephemeral port and check the observability "
        "surfaces (traces, Prometheus exposition, access log)",
    )
    _add_obs_flags(sfr)
    sfr.set_defaults(func=cmd_serve_front)

    bfr = sub.add_parser(
        "bench-front",
        help="replay jittered traffic through admission control vs per-request",
    )
    bfr.add_argument("--patients", type=int, default=60)
    bfr.add_argument("--seed", type=int, default=0)
    bfr.add_argument("--tenants", type=int, default=4)
    bfr.add_argument("--requests", type=int, default=24)
    bfr.add_argument(
        "--workload",
        choices=("hospital", "multidoc", "skew", "adversarial"),
        default="hospital",
        help="hospital = single-document stream; multidoc = hospital + "
        "deep-recursion ontology with per-request document routing; "
        "skew = N same-shape documents behind a Zipf-hot stream; "
        "adversarial = honest traffic salted with rewrite bombs and a "
        "cache-poisoning view swap (bombs must reject query-too-complex)",
    )
    bfr.add_argument(
        "--compose",
        action="store_true",
        help="front-end steps same-view wave groups as one composed "
        "automaton (the per-request baseline stays sequential)",
    )
    bfr.add_argument("--gap-ms", type=float, default=1.0)
    bfr.add_argument("--jitter", type=float, default=0.75)
    bfr.add_argument("--max-wave", type=int, default=8)
    bfr.add_argument("--max-wait-ms", type=float, default=30.0)
    bfr.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help="bound on concurrently evaluating waves",
    )
    bfr.add_argument(
        "--plan-dir",
        help="persistent plan store for the front-end service",
    )
    bfr.add_argument(
        "--doc-dir",
        help="persistent document-index directory for the front-end service",
    )
    _add_obs_flags(bfr)
    bfr.set_defaults(func=cmd_bench_front)

    flt = sub.add_parser(
        "serve-fleet",
        help="boot the acceptor + N-worker fleet over the multidoc workload",
    )
    flt.add_argument("--workers", type=int, default=3)
    flt.add_argument("--patients", type=int, default=60)
    flt.add_argument("--terms", type=int, default=48)
    flt.add_argument("--tenants", type=int, default=4)
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument("--algorithm", choices=ALGORITHMS, default=HYPE)
    flt.add_argument("--host", default="127.0.0.1")
    flt.add_argument("--port", type=int, default=7408)
    flt.add_argument("--max-wave", type=int, default=8)
    flt.add_argument("--max-wait-ms", type=float, default=20.0)
    flt.add_argument(
        "--pool-size",
        type=int,
        default=None,
        help="per-worker bound on concurrently evaluating waves",
    )
    flt.add_argument(
        "--plan-dir",
        help="persistent plan store directory shared by every worker",
    )
    flt.add_argument(
        "--doc-dir",
        help="persistent document-index directory shared by every worker",
    )
    flt.add_argument(
        "--access-log",
        help="per-worker NDJSON access-log path; '{worker}' expands to "
        "the worker name",
    )
    flt.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        help="seconds the acceptor waits for a worker reply before "
        "rerouting the (unacknowledged) request",
    )
    flt.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive failures before a worker's circuit opens",
    )
    flt.add_argument(
        "--backoff-base",
        type=float,
        default=0.25,
        help="base seconds for breaker/restart exponential backoff",
    )
    flt.add_argument(
        "--backoff-cap",
        type=float,
        default=8.0,
        help="ceiling seconds for breaker/restart exponential backoff",
    )
    flt.add_argument(
        "--faults",
        help="fault-injection plan (inline JSON or a file path); "
        "exported to workers via the environment",
    )
    flt.set_defaults(func=cmd_serve_fleet)

    obs = sub.add_parser(
        "obs",
        help="pretty-print traces or metrics from a running serve-front",
    )
    obs.add_argument("--host", default="127.0.0.1")
    obs.add_argument(
        "--port",
        type=int,
        nargs="+",
        default=[7407],
        help="front-end port(s); with --prometheus, several ports are "
        "fetched and merged into one exposition",
    )
    obs.add_argument(
        "--limit", type=int, default=None, help="newest N traces only"
    )
    obs.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition instead of traces",
    )
    obs.add_argument(
        "--fleet",
        action="store_true",
        help="print the fleet resilience view (liveness, restarts, "
        "per-worker circuit-breaker state) from a fleet acceptor",
    )
    obs.set_defaults(func=cmd_obs)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
