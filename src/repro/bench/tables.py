"""Plain-text series tables in the style of the paper's figures.

Each figure of Section 7 plots evaluation time against document size for a
set of algorithms; :func:`format_series` renders the same data as an ASCII
table (one row per document, one column per algorithm) that the benchmark
harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_series(
    title: str,
    row_labels: Sequence[str],
    columns: Mapping[str, Sequence[float]],
    unit: str = "ms",
    extra: Mapping[str, Sequence[object]] | None = None,
) -> str:
    """Render a per-size, per-algorithm series table.

    Args:
        title: Figure/table caption.
        row_labels: One label per document size (x-axis).
        columns: algorithm name -> per-size measurements (seconds).
        unit: ``"ms"`` or ``"s"`` display unit.
        extra: Optional additional columns of raw values (e.g. node counts).
    """
    scale = 1000.0 if unit == "ms" else 1.0
    headers = ["size"]
    if extra:
        headers.extend(extra.keys())
    headers.extend(columns.keys())
    rows: list[list[str]] = []
    for i, label in enumerate(row_labels):
        row = [str(label)]
        if extra:
            for values in extra.values():
                row.append(str(values[i]))
        for series in columns.values():
            row.append(f"{series[i] * scale:.1f}")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    lines.append(f"(times in {unit})")
    return "\n".join(lines)


def format_ratios(
    baseline: str, columns: Mapping[str, Sequence[float]]
) -> str:
    """Average speed-up of every column relative to ``baseline``."""
    base = columns[baseline]
    parts = []
    for name, series in columns.items():
        if name == baseline:
            continue
        ratios = [b / s for b, s in zip(base, series) if s > 0]
        if ratios:
            parts.append(f"{baseline}/{name} = {sum(ratios) / len(ratios):.2f}x")
    return "; ".join(parts)
