"""Timing helpers for the experiment harness.

The paper reports times "averaged over at least 5 runs of each experiment";
:func:`measure` follows suit with a configurable repeat count and returns
the mean (plus min/max for dispersion checks).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass
class Timing:
    """Mean/min/max wall-clock seconds over the repeats."""

    mean: float
    best: float
    worst: float
    repeats: int

    def __str__(self) -> str:
        return f"{self.mean * 1000:.1f} ms (min {self.best * 1000:.1f})"


def measure(fn: Callable[[], object], repeats: int = 5) -> Timing:
    """Run ``fn`` ``repeats`` times and report wall-clock statistics."""
    times: list[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return Timing(
        mean=sum(times) / len(times),
        best=min(times),
        worst=max(times),
        repeats=len(times),
    )
