"""Benchmark harness: timing, tables, per-figure runners."""

from .runners import SeriesResult, make_algorithms, pruning_statistics, run_series
from .tables import format_ratios, format_series
from .timing import Timing, measure

__all__ = [
    "measure",
    "Timing",
    "format_series",
    "format_ratios",
    "run_series",
    "make_algorithms",
    "pruning_statistics",
    "SeriesResult",
]
