"""Experiment runners shared by ``benchmarks/`` and the results harness.

Each runner reproduces one figure/table of Section 7: it generates (or
receives) the document series, runs every algorithm on every size, checks
all algorithms agree on the answers, and returns the timing matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..automata.mfa import MFA
from ..baselines.naive import NaiveEvaluator
from ..baselines.twopass import TwoPassEvaluator
from ..baselines.xquery_sim import XQuerySimEvaluator
from ..hype.analyze import ViabilityAnalyzer
from ..hype.api import to_mfa
from ..hype.core import CompiledPlan
from ..hype.index import build_index
from ..workloads.scales import SeriesStep
from ..xtree.node import XMLTree
from .timing import Timing, measure


@dataclass
class SeriesResult:
    """Timing matrix of one experiment."""

    title: str
    row_labels: list[str] = field(default_factory=list)
    element_counts: list[int] = field(default_factory=list)
    answer_counts: list[int] = field(default_factory=list)
    times: dict[str, list[float]] = field(default_factory=dict)

    def mean_times(self) -> dict[str, list[float]]:
        return self.times

    def render(self) -> str:
        from .tables import format_series

        return format_series(
            self.title,
            self.row_labels,
            self.times,
            extra={
                "elements": self.element_counts,
                "answers": self.answer_counts,
            },
        )


def make_algorithms(
    query: str, include: Sequence[str]
) -> dict[str, Callable[[XMLTree], set]]:
    """Build name→runner callables for the requested algorithms.

    Known names: ``naive`` (JAXP profile), ``twopass`` (Koch profile),
    ``xquery`` (GALAX profile), ``hype``, ``opthype``, ``opthype-c``.
    Index construction for the OptHyPE variants is *included* in the
    measured time on first use per tree — matching the paper, whose index
    is built during the document scan — then cached per tree.
    """
    mfa = to_mfa(query)
    runners: dict[str, Callable[[XMLTree], set]] = {}
    index_cache: dict[tuple[int, bool], object] = {}

    def hype_runner(tree: XMLTree) -> set:
        return CompiledPlan(mfa).run(tree.root).answers

    def opt_runner_factory(compressed: bool):
        def run(tree: XMLTree) -> set:
            key = (id(tree), compressed)
            index = index_cache.get(key)
            if index is None:
                index = build_index(tree, compressed=compressed)
                index_cache[key] = index
            plan = CompiledPlan(
                mfa, index=index, analyzer=ViabilityAnalyzer(mfa, index.bits)
            )
            return plan.run(tree.root).answers

        return run

    for name in include:
        if name == "naive":
            runners[name] = NaiveEvaluator(query).run
        elif name == "twopass":
            runners[name] = TwoPassEvaluator(mfa).run
        elif name == "xquery":
            runners[name] = XQuerySimEvaluator(query).run
        elif name == "hype":
            runners[name] = hype_runner
        elif name == "opthype":
            runners[name] = opt_runner_factory(False)
        elif name == "opthype-c":
            runners[name] = opt_runner_factory(True)
        else:
            raise ValueError(f"unknown algorithm {name!r}")
    return runners


def run_series(
    title: str,
    query: str,
    series: Sequence[SeriesStep],
    algorithms: Sequence[str],
    repeats: int = 3,
) -> SeriesResult:
    """Run one figure's experiment over the document series.

    All algorithms must return identical answer sets on every document —
    a benchmark that disagrees is a correctness bug, not a data point.
    """
    runners = make_algorithms(query, algorithms)
    result = SeriesResult(title=title)
    for name in algorithms:
        result.times[name] = []
    for step in series:
        reference: set | None = None
        result.row_labels.append(step.label)
        result.element_counts.append(step.element_count)
        for name in algorithms:
            runner = runners[name]
            answers = runner(step.tree)
            if reference is None:
                reference = answers
                result.answer_counts.append(len(answers))
            elif {n.node_id for n in answers} != {n.node_id for n in reference}:
                raise AssertionError(
                    f"{title}: algorithm {name!r} disagrees on {step.label}"
                )
            timing: Timing = measure(lambda r=runner, t=step.tree: r(t), repeats)
            result.times[name].append(timing.mean)
    return result


def pruning_statistics(query: str, tree: XMLTree) -> dict[str, float]:
    """Fraction of element nodes *not* visited, per HyPE variant (E8)."""
    mfa: MFA = to_mfa(query)
    total = tree.element_count
    out: dict[str, float] = {}
    plain = CompiledPlan(mfa).run(tree.root)
    out["hype"] = 1.0 - plain.stats.visited_elements / total
    for name, compressed in (("opthype", False), ("opthype-c", True)):
        index = build_index(tree, compressed=compressed)
        plan = CompiledPlan(
            mfa, index=index, analyzer=ViabilityAnalyzer(mfa, index.bits)
        )
        run = plan.run(tree.root)
        out[name] = 1.0 - run.stats.visited_elements / total
    return out
