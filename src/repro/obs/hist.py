"""Fixed log-bucket latency histograms: O(1) record, mergeable, p-quantiles.

Count/mean/min/max aggregates (all the service reported before this
package) hide exactly the behaviour a serving system is judged on — the
tail.  A :class:`Histogram` fixes that at O(1) per record: bucket
boundaries are a fixed geometric ladder (``LOWEST * GROWTH**i`` seconds),
so recording is one ``log2`` and one list increment, two histograms
merge by adding bucket counts (waves, shards, restarts), and any
quantile is a single cumulative walk with linear interpolation inside
the landing bucket.

The ladder spans 10 µs – ~1.4 h with 2× resolution, which brackets
everything this service does (sub-millisecond cache hits through
multi-second cold rewrites) while keeping the whole histogram 32 ints —
cheap enough to carry one per tenant.  The boundaries are also exactly
the ``le`` labels of the Prometheus exposition
(:func:`repro.obs.export.render_prometheus`), so scrape-side quantiles
agree with the in-process ones.
"""

from __future__ import annotations

import math

#: Lower edge of the first finite bucket, in seconds (10 µs).
LOWEST = 1e-5

#: Geometric growth factor between bucket upper bounds.
GROWTH = 2.0

#: Number of finite buckets; one implicit +Inf overflow bucket follows.
BUCKETS = 29

#: Upper bounds of the finite buckets (seconds), ascending.
BOUNDS = tuple(LOWEST * GROWTH**i for i in range(BUCKETS))

_LOG_GROWTH = math.log(GROWTH)


def bucket_index(seconds: float) -> int:
    """The bucket ``seconds`` lands in (``BUCKETS`` = the +Inf bucket).

    Bucket ``i`` holds values in ``(BOUNDS[i-1], BOUNDS[i]]`` (bucket 0
    holds everything up to ``LOWEST``), mirroring Prometheus ``le``
    semantics.
    """
    if seconds <= LOWEST:
        return 0
    index = min(math.ceil(math.log(seconds / LOWEST) / _LOG_GROWTH), BUCKETS)
    # Float round-trip guard: log/exp noise must never shift a value
    # across its boundary (le semantics are part of the export contract).
    if index < BUCKETS and seconds > BOUNDS[index]:
        index += 1
    elif index > 0 and seconds <= BOUNDS[index - 1]:
        index -= 1
    return index


class Histogram:
    """A mergeable log-bucket histogram of non-negative seconds."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (BUCKETS + 1)
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """O(1): one log, one increment."""
        if seconds < 0.0:
            seconds = 0.0
        if self.count == 0 or seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.count += 1
        self.total += seconds
        self.counts[bucket_index(seconds)] += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (returns self)."""
        if other.count:
            if self.count == 0 or other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        self.count += other.count
        self.total += other.total
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        return self

    def copy(self) -> "Histogram":
        clone = Histogram()
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        return clone

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile estimate (0.0 with no records).

        Walks the cumulative counts to the landing bucket and
        interpolates linearly inside it, then clamps into the observed
        ``[min, max]`` — so a single-sample histogram reports that
        sample for every quantile instead of a bucket boundary.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lower = 0.0 if i == 0 else BOUNDS[i - 1]
                upper = BOUNDS[i] if i < BUCKETS else self.max
                fraction = (rank - cumulative) / n
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    # ------------------------------------------------------------------
    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-shaped ``(le, cumulative_count)`` pairs.

        The final pair's bound is ``math.inf`` and its count equals
        :attr:`count` — the classic ``+Inf`` invariant.
        """
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for i, n in enumerate(self.counts[:BUCKETS]):
            cumulative += n
            pairs.append((BOUNDS[i], cumulative))
        pairs.append((math.inf, cumulative + self.counts[BUCKETS]))
        return pairs

    def as_dict(self) -> dict:
        """JSON-safe summary (``+Inf`` spelled as a string)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "buckets": [
                {"le": "+Inf" if math.isinf(le) else le, "count": n}
                for le, n in self.cumulative_buckets()
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, p50={self.p50 * 1000:.2f}ms, "
            f"p99={self.p99 * 1000:.2f}ms)"
        )
