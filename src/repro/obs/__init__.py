"""``repro.obs`` — end-to-end request tracing, histograms and export.

PRs 1–5 built the serving machinery (admission waves, execution pool,
two-tier plan cache, shared document store); this package makes that
machinery *observable*:

* :mod:`repro.obs.trace` — a :class:`Tracer` producing trace-id/span-id
  :class:`Span` trees with contextvar-based propagation that survives
  both the asyncio front-end and :class:`repro.serve.pool.ExecutionPool`
  worker threads, probabilistic sampling (errored/slow requests are
  always kept) and a bounded ring-buffer :class:`TraceStore`;
* :mod:`repro.obs.hist` — a fixed log-bucket :class:`Histogram`
  (O(1) record, mergeable) behind the p50/p95/p99 latency percentiles;
* :mod:`repro.obs.export` — Prometheus text-exposition rendering of a
  :class:`repro.serve.metrics.MetricsSnapshot`;
* :mod:`repro.obs.log` — a structured NDJSON access/slow-query log,
  correlated with traces by trace id.

The instrumentation contract is ambient: lower layers (the compile
pipeline, the document store, the evaluation pool) call
:func:`repro.obs.trace.span` / :func:`repro.obs.trace.add_span`, which
are no-ops costing one contextvar read unless a request's root span is
active — so a service run without a tracer pays (measurably, see
``BENCH_hype.json`` ``tracing``) nothing on the hot path.
"""

from .hist import Histogram
from .log import AccessLogger, StructuredLog
from .trace import (
    Span,
    TraceStore,
    Tracer,
    add_span,
    current_span,
    span,
    span_roots,
)
from .export import merge_expositions, render_prometheus

__all__ = [
    "AccessLogger",
    "Histogram",
    "Span",
    "StructuredLog",
    "TraceStore",
    "Tracer",
    "add_span",
    "current_span",
    "merge_expositions",
    "render_prometheus",
    "span",
    "span_roots",
]
