"""Structured NDJSON access and slow-query logging, trace-correlated.

One entry per line, one JSON object per entry — the same framing as the
front-end protocol, so the log is greppable and machine-parseable with
zero dependencies.  Two modes share one writer:

* **access log** (``access=True``): every request gets an entry;
* **slow-query log** (``access=False``): only requests at or above
  ``slow_seconds``, and every errored request, get one — the
  production-friendly default.

Every entry carries the request's ``trace_id`` (when tracing is on), so
a slow entry is a pointer into the trace ring buffer — and because slow
traces are always retained by the :class:`repro.obs.trace.Tracer`, the
pointer dereferences.  Entries also inline the *stage annotations*
mined from the request's own spans (plan-cache tier, per-stage compile
times, doc-store resolution, evaluation shape), so the common question
— "which stage ate the time" — is answerable from the log line alone.
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO


class StructuredLog:
    """A thread-safe NDJSON sink (path or open text stream).

    Entries are written with ``sort_keys`` so diffs and greps are
    stable; each ``write`` is one line, flushed, under a lock — safe
    from pool workers and executor threads alike.
    """

    def __init__(self, target: str | IO[str]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_stream = True
            self.path: str | None = target
        else:
            self._stream = target
            self._owns_stream = False
            self.path = None
        self._entries = 0

    def write(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()
            self._entries += 1

    @property
    def entries(self) -> int:
        with self._lock:
            return self._entries

    def close(self) -> None:
        with self._lock:
            if self._owns_stream and not self._stream.closed:
                self._stream.close()

    def __enter__(self) -> "StructuredLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Span names whose attributes are mined into slow-entry annotations.
_ANNOTATED_PREFIXES = ("plan", "compile.", "docstore.", "queue.", "evaluate")


def annotations_from_spans(spans: list[dict]) -> dict:
    """Condense a trace's spans into per-stage log annotations.

    Returns ``{span_name: {"ms": duration, ...attributes}}``; repeated
    names (per-stage compile spans across retries) accumulate their
    durations and keep the last attributes.
    """
    summary: dict[str, dict] = {}
    for span in spans:
        name = span["name"]
        if not name.startswith(_ANNOTATED_PREFIXES):
            continue
        entry = summary.get(name)
        if entry is None:
            entry = summary[name] = {"ms": 0.0}
        entry["ms"] += span["duration_ms"]
        for key, value in span["attributes"].items():
            entry[key] = value
        if span.get("error"):
            entry["error"] = span["error"]
    return summary


class AccessLogger:
    """Decides which requests get a log entry, and writes them.

    ``slow_seconds`` is the slow-query threshold (``None`` disables the
    slow classification); ``access`` selects access-log mode (log
    everything) over slow-log mode (slow + errored only).
    """

    def __init__(
        self,
        log: StructuredLog,
        slow_seconds: float | None = None,
        access: bool = False,
    ) -> None:
        self.log = log
        self.slow_seconds = slow_seconds
        self.access = access

    # ------------------------------------------------------------------
    def record(
        self,
        *,
        tenant: str | None,
        query: str | None,
        duration: float,
        error: str | None = None,
        trace: dict | None = None,
        trace_id: str | None = None,
        **extra,
    ) -> bool:
        """Write one request's entry if it qualifies; returns whether.

        ``trace`` is the request's exported trace record (when its
        tracer kept it): its id correlates the entry and its spans
        become the stage annotations.  ``extra`` fields (wave size,
        answer count, view, algorithm ...) are inlined verbatim.
        """
        slow = (
            self.slow_seconds is not None and duration >= self.slow_seconds
        )
        if not (self.access or slow or error is not None):
            return False
        entry: dict = {
            "ts": time.time(),
            "tenant": tenant,
            "query": query,
            "duration_ms": duration * 1000.0,
            "slow": slow,
        }
        if error is not None:
            entry["error"] = error
        if trace is not None:
            entry["trace_id"] = trace["trace_id"]
            stages = annotations_from_spans(trace["spans"])
            if stages:
                entry["stages"] = stages
        elif trace_id is not None:
            entry["trace_id"] = trace_id
        entry.update(extra)
        self.log.write(entry)
        return True
