"""Request tracing: trace-id/span-id span trees with ambient propagation.

The model is deliberately small — a :class:`Span` is a named, monotonic
``[start, end)`` interval with typed attributes and a parent link; a
*trace* is the set of spans sharing one trace id, rooted at the span the
:class:`Tracer` opened for the request.  What makes it useful across
this codebase's layers is the propagation contract:

* the **current span** lives in a :mod:`contextvars` variable, so the
  asyncio front-end's per-request tasks each see their own root;
* crossing into a thread (``run_in_executor``, the
  :class:`repro.serve.pool.ExecutionPool`) is the *caller's* job:
  capture ``contextvars.copy_context()`` where the trace is active and
  ``ctx.run(...)`` on the other side.  The pool and the admission
  controller both do this, so a span opened inside a pool worker
  attaches to the request that dispatched the work — never to a
  neighbouring wave's trace;
* layers that merely *annotate* (the compile pipeline, the document
  store) call the module-level :func:`span` / :func:`add_span` helpers,
  which cost one contextvar read and do nothing unless a trace is
  active — no tracer reference is threaded through their constructors.

Retention: the sampling decision is probabilistic per trace
(``sample_rate``), but errored traces and traces slower than
``slow_seconds`` are always kept — the traces an operator actually
wants are exactly the ones sampling would lose.  Finished traces land
in a bounded ring-buffer :class:`TraceStore` whose JSON export is what
the front-end's ``trace`` op and the ``repro obs`` CLI read.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from collections import deque
from contextvars import ContextVar

#: Attribute values allowed on spans (JSON-safe scalars).
AttrValue = str | int | float | bool | None

#: The ambient current span.  ``None`` means no trace is active in this
#: context and every instrumentation helper is a no-op.
_ACTIVE: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


class _ActiveTrace:
    """Mutable per-trace state shared by all of the trace's spans.

    Spans can finish on different threads (event loop, executor
    threads, pool workers), so the finished-span list is lock-guarded.
    ``origin`` is the ``perf_counter`` instant of the root's start —
    every span start/end is stored relative to it, which keeps the
    export monotonic and immune to wall-clock steps.
    """

    __slots__ = (
        "trace_id",
        "origin",
        "started_at",
        "sampled",
        "spans",
        "lock",
        "_next_span",
    )

    def __init__(self, trace_id: str, sampled: bool) -> None:
        self.trace_id = trace_id
        self.origin = time.perf_counter()
        self.started_at = time.time()
        self.sampled = sampled
        self.spans: list[Span] = []
        self.lock = threading.Lock()
        self._next_span = 0

    def next_span_id(self) -> str:
        with self.lock:
            self._next_span += 1
            return f"{self.trace_id}-{self._next_span:03d}"

    def finish(self, span: "Span") -> None:
        with self.lock:
            self.spans.append(span)


class Span:
    """One named interval of one trace.

    ``start``/``end`` are ``perf_counter`` instants (monotonic);
    ``attributes`` holds JSON-safe scalars; ``error`` is a one-line
    classification set when the spanned work raised (or when the caller
    marks a failure explicitly via :meth:`fail`).
    """

    __slots__ = (
        "trace",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "attributes",
        "error",
    )

    def __init__(
        self,
        trace: _ActiveTrace,
        name: str,
        parent_id: str | None,
        start: float | None = None,
    ) -> None:
        self.trace = trace
        self.span_id = trace.next_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = time.perf_counter() if start is None else start
        self.end: float | None = None
        self.attributes: dict[str, AttrValue] = {}
        self.error: str | None = None

    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    @property
    def duration(self) -> float:
        """Seconds spanned (0.0 while unfinished)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attributes: AttrValue) -> "Span":
        """Attach attributes (later calls overwrite same-named keys)."""
        self.attributes.update(attributes)
        return self

    def fail(self, error: str) -> "Span":
        """Mark the span (and hence its trace) as errored."""
        self.error = error
        return self

    def finish(self, end: float | None = None) -> None:
        """Close the interval and hand the span to its trace (idempotent)."""
        if self.end is not None:
            return
        self.end = time.perf_counter() if end is None else end
        self.trace.finish(self)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON record; times are milliseconds relative to the root start."""
        return {
            "trace_id": self.trace.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": (self.start - self.trace.origin) * 1000.0,
            "duration_ms": self.duration * 1000.0,
            "attributes": dict(self.attributes),
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration * 1000:.2f}ms)"
        )


# ----------------------------------------------------------------------
# Ambient helpers (the instrumentation surface lower layers use)
# ----------------------------------------------------------------------
def current_span() -> Span | None:
    """The context's active span, or ``None`` outside any trace."""
    return _ACTIVE.get()


@contextlib.contextmanager
def span(name: str, **attributes: AttrValue):
    """Open a child span of the context's active span.

    Yields the new :class:`Span` (so callers can ``.set(...)`` more
    attributes as they learn them) — or ``None``, doing nothing, when no
    trace is active.  An exception raised inside the block marks the
    span errored and propagates.
    """
    parent = _ACTIVE.get()
    if parent is None:
        yield None
        return
    child = Span(parent.trace, name, parent.span_id)
    if attributes:
        child.attributes.update(attributes)
    token = _ACTIVE.set(child)
    try:
        yield child
    except BaseException as error:
        child.error = f"{type(error).__name__}: {error}"
        raise
    finally:
        _ACTIVE.reset(token)
        child.finish()


def add_span(
    name: str, start: float, end: float, **attributes: AttrValue
) -> Span | None:
    """Record an already-timed interval as a child of the active span.

    For work whose timing is measured out-of-band — the pool's
    queue-wait, a shared evaluation pass attributed to each admitted
    request — where a context-manager span cannot wrap the interval.
    ``start``/``end`` are ``perf_counter`` instants.
    """
    parent = _ACTIVE.get()
    if parent is None:
        return None
    child = Span(parent.trace, name, parent.span_id, start=start)
    if attributes:
        child.attributes.update(attributes)
    child.finish(end)
    return child


# ----------------------------------------------------------------------
def span_roots(trace: dict) -> list[dict]:
    """Assemble a trace export's flat span list into nested trees.

    Returns the root spans (no parent in the record), each with a
    ``children`` list, recursively, ordered by start time.  Used by the
    ``repro obs`` pretty-printer and the smoke checks that assert a
    trace is *complete* (one root whose tree covers every tier).
    """
    nodes = {s["span_id"]: dict(s, children=[]) for s in trace["spans"]}
    roots: list[dict] = []
    for node in nodes.values():
        parent = nodes.get(node["parent_id"])
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda child: child["start_ms"])
    roots.sort(key=lambda root: root["start_ms"])
    return roots


class TraceStore:
    """A bounded ring buffer of finished trace records (thread-safe).

    Holds plain JSON-safe dicts, not live spans — a stored trace is an
    immutable export.  The newest ``capacity`` traces win; the oldest
    are silently dropped (``dropped`` counts them).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"trace store capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._kept = 0
        self._dropped = 0

    def add(self, trace: dict) -> None:
        with self._lock:
            if len(self._traces) == self.capacity:
                self._dropped += 1
            self._traces.append(trace)
            self._kept += 1

    def recent(self, limit: int | None = None) -> list[dict]:
        """Newest-first export of up to ``limit`` traces."""
        with self._lock:
            traces = list(self._traces)
        traces.reverse()
        return traces if limit is None else traces[:limit]

    @property
    def kept(self) -> int:
        """Traces retained (sampled, errored or slow) since start."""
        with self._lock:
            return self._kept

    @property
    def dropped(self) -> int:
        """Retained traces later evicted by the ring bound."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class Tracer:
    """Factory of request traces; owns sampling and the ring buffer.

    ``sample_rate`` is the probabilistic keep fraction (1.0 = keep all,
    0.0 = keep none); errored traces, and traces slower than
    ``slow_seconds`` (when set), are kept regardless — sampling controls
    volume, never visibility of failures.  ``seed`` makes the sampling
    stream deterministic for tests.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        slow_seconds: float | None = None,
        capacity: int = 256,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if slow_seconds is not None and slow_seconds < 0:
            raise ValueError(f"slow_seconds must be >= 0, got {slow_seconds}")
        self.sample_rate = sample_rate
        self.slow_seconds = slow_seconds
        self.store = TraceStore(capacity)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._next_trace = 0
        self._started = 0

    # ------------------------------------------------------------------
    def _new_trace_id(self) -> str:
        with self._lock:
            self._next_trace += 1
            self._started += 1
            serial = self._next_trace
        return f"{self._rng.getrandbits(32):08x}{serial:08x}"

    def _decide_sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.sample_rate

    @property
    def started(self) -> int:
        """Root traces ever opened (kept or not)."""
        with self._lock:
            return self._started

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def trace(self, name: str, **attributes: AttrValue):
        """Open a root span (a new trace) in the current context.

        On exit the trace's retention is decided: kept when sampled, or
        when the root erred, or when the root's duration reached
        ``slow_seconds``.  Nested calls start *independent* traces only
        when no trace is active; inside one, this degrades to a child
        span so instrumented layers compose without double roots.
        """
        if _ACTIVE.get() is not None:
            with span(name, **attributes) as child:
                yield child
            return
        active = _ActiveTrace(self._new_trace_id(), self._decide_sample())
        root = Span(active, name, parent_id=None)
        if attributes:
            root.attributes.update(attributes)
        token = _ACTIVE.set(root)
        try:
            yield root
        except BaseException as error:
            root.error = f"{type(error).__name__}: {error}"
            raise
        finally:
            _ACTIVE.reset(token)
            root.finish()
            self._retain(active, root)

    def _retain(self, active: _ActiveTrace, root: Span) -> None:
        errored = any(s.error for s in active.spans)
        slow = (
            self.slow_seconds is not None
            and root.duration >= self.slow_seconds
        )
        if not (active.sampled or errored or slow):
            return
        reason = (
            "error" if errored else ("slow" if slow else "sampled")
        )
        self.store.add(self.export_trace(active, root, reason))

    @staticmethod
    def export_trace(active: _ActiveTrace, root: Span, reason: str) -> dict:
        """The immutable JSON record one finished trace stores."""
        spans = sorted(active.spans, key=lambda s: s.start)
        return {
            "trace_id": active.trace_id,
            "root": root.name,
            "started_at": active.started_at,
            "duration_ms": root.duration * 1000.0,
            "kept": reason,
            "spans": [s.as_dict() for s in spans],
        }
