"""Prometheus text-exposition rendering of a service metrics snapshot.

:func:`render_prometheus` turns a
:class:`repro.serve.metrics.MetricsSnapshot` into the Prometheus
text format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, one
``name{labels} value`` sample per line.  The front-end serves it via
the ``prometheus`` op (``{"op": "prometheus"}`` → the text in a JSON
field), and ``repro obs --prometheus`` prints it — point an exporter
sidecar or a scrape job at either.

Naming follows the Prometheus conventions: ``_total`` counters,
``_seconds`` base units, histograms as ``_bucket``/``_sum``/``_count``
triplets whose ``le`` labels are exactly the bucket ladder of
:mod:`repro.obs.hist` — so the classic invariant holds and is checked
by the obs smoke: the latency histogram's ``+Inf`` bucket equals the
request counter.

This module deliberately imports nothing from :mod:`repro.serve` — it
reads the snapshot duck-typed, so the dependency arrow keeps pointing
from the serving layer into ``obs`` and never back.
"""

from __future__ import annotations

import math
from dataclasses import fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serve.metrics import MetricsSnapshot

    from .hist import Histogram


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float | int) -> str:
    if isinstance(value, bool):  # bool is an int; never render True/False
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{value:.10g}"


def _labels(**labels: str) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


class _Exposition:
    """Accumulates HELP/TYPE-headed metric families in order.

    ``base_labels`` (e.g. ``worker="w3"``) are stamped onto every sample
    — how a fleet keeps per-process resolution after its workers'
    expositions are merged into one aggregate view.
    """

    def __init__(
        self, namespace: str, base_labels: dict[str, str] | None = None
    ) -> None:
        self.namespace = namespace
        self.base_labels = dict(base_labels or {})
        self.lines: list[str] = []
        self._declared: set[str] = set()

    def family(self, name: str, kind: str, help_text: str) -> str:
        """Declare a metric family (HELP/TYPE emitted once per name)."""
        full = f"{self.namespace}_{name}"
        if full not in self._declared:
            self._declared.add(full)
            self.lines.append(f"# HELP {full} {help_text}")
            self.lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(self, full_name: str, value: float | int, **labels: str) -> None:
        merged = {**self.base_labels, **labels}
        self.lines.append(f"{full_name}{_labels(**merged)} {_fmt(value)}")

    def histogram(
        self, name: str, hist: "Histogram", help_text: str, **labels: str
    ) -> None:
        full = self.family(name, "histogram", help_text)
        for le, cumulative in hist.cumulative_buckets():
            le_label = "+Inf" if math.isinf(le) else _fmt(le)
            self.sample(f"{full}_bucket", cumulative, **labels, le=le_label)
        self.sample(f"{full}_sum", hist.total, **labels)
        self.sample(f"{full}_count", hist.count, **labels)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def render_prometheus(
    snapshot: "MetricsSnapshot",
    namespace: str = "repro",
    worker: str | None = None,
) -> str:
    """The full text exposition of one metrics snapshot.

    ``worker`` adds a ``worker="..."`` label to every sample so series
    from many fleet processes stay distinguishable after
    :func:`merge_expositions` folds their texts into one view.
    """
    exp = _Exposition(
        namespace, None if worker is None else {"worker": worker}
    )

    name = exp.family("requests_total", "counter", "Served requests.")
    exp.sample(name, snapshot.requests)
    name = exp.family(
        "rejected_total", "counter", "Rejected requests by failure kind."
    )
    for kind, count in sorted(snapshot.rejected_kinds.items()):
        exp.sample(name, count, kind=kind)

    name = exp.family("waves_total", "counter", "Admission waves dispatched.")
    exp.sample(name, snapshot.waves)
    name = exp.family(
        "wave_requests_total", "counter", "Requests that joined a wave."
    )
    exp.sample(name, snapshot.wave_requests)
    name = exp.family(
        "wave_admitted_total",
        "counter",
        "Wave requests admitted into shared evaluation.",
    )
    exp.sample(name, snapshot.wave_admitted)
    name = exp.family(
        "largest_wave", "gauge", "Largest admission wave observed."
    )
    exp.sample(name, snapshot.largest_wave)

    name = exp.family(
        "batch_runs_total", "counter", "Shared evaluation passes."
    )
    exp.sample(name, snapshot.batch_runs)
    name = exp.family(
        "batched_queries_total", "counter", "Queries served by shared passes."
    )
    exp.sample(name, snapshot.batched_queries)
    name = exp.family(
        "batch_visited_total",
        "counter",
        "Elements visited by shared passes.",
    )
    exp.sample(name, snapshot.batch_visited)
    name = exp.family(
        "sequential_visited_total",
        "counter",
        "Elements per-query passes would have visited.",
    )
    exp.sample(name, snapshot.sequential_visited)

    name = exp.family(
        "composed_groups_total",
        "counter",
        "Wave groups stepped as one composed machine.",
    )
    exp.sample(name, snapshot.composed_groups)
    name = exp.family(
        "composed_lanes_total", "counter", "Lanes advanced composed."
    )
    exp.sample(name, snapshot.composed_lanes)
    name = exp.family(
        "composed_fallbacks_total",
        "counter",
        "Composed groups that hit the ccfg cap and re-ran per-lane.",
    )
    exp.sample(name, snapshot.composed_fallbacks)
    if snapshot.composed is not None:
        name = exp.family(
            "composed_cache_ops_total",
            "counter",
            "Composed-kernel tier operations by kind.",
        )
        for field in fields(snapshot.composed):
            exp.sample(name, getattr(snapshot.composed, field.name), op=field.name)
        name = exp.family(
            "composed_kernels", "gauge", "Composed kernels cached."
        )
        exp.sample(name, snapshot.composed_gauges.get("kernels", 0))
        name = exp.family(
            "composed_interned_ccfgs",
            "gauge",
            "Composed configurations interned across cached kernels.",
        )
        exp.sample(name, snapshot.composed_gauges.get("interned_ccfgs", 0))

    name = exp.family(
        "plan_cache_hits_total", "counter", "Plan-cache hits by tier."
    )
    exp.sample(name, snapshot.cache.l1_hits, tier="l1")
    exp.sample(name, snapshot.cache.l2_hits, tier="l2")
    name = exp.family(
        "plan_cache_misses_total", "counter", "Full plan-cache misses."
    )
    exp.sample(name, snapshot.cache.misses)
    name = exp.family(
        "plan_cache_evictions_total", "counter", "L1 LRU evictions."
    )
    exp.sample(name, snapshot.cache.evictions)

    runs = exp.family(
        "compile_stage_runs_total", "counter", "Compile-stage invocations."
    )
    for stage, counters in snapshot.compile.as_dict().items():
        exp.sample(runs, counters["count"], stage=stage)
    seconds = exp.family(
        "compile_stage_seconds_total",
        "counter",
        "Cumulative compile-stage wall time.",
    )
    for stage, counters in snapshot.compile.as_dict().items():
        exp.sample(seconds, counters["seconds"], stage=stage)

    for block, stats in (
        ("plan_store", snapshot.store),
        ("doc_store", snapshot.doc_store),
    ):
        if stats is None:
            continue
        name = exp.family(
            f"{block}_ops_total",
            "counter",
            f"{block.replace('_', ' ')} operations by kind.",
        )
        for field in fields(stats):
            exp.sample(name, getattr(stats, field.name), op=field.name)

    name = exp.family(
        "in_flight_evaluations", "gauge", "Evaluations executing now."
    )
    exp.sample(name, snapshot.in_flight_evaluations)
    name = exp.family(
        "peak_in_flight", "gauge", "Peak concurrent evaluations observed."
    )
    exp.sample(name, snapshot.peak_in_flight)
    name = exp.family("pool_size", "gauge", "Evaluation pool worker bound.")
    exp.sample(name, snapshot.pool_size)

    exp.histogram(
        "request_latency_seconds",
        snapshot.latency.hist,
        "Per-request evaluation latency.",
    )
    exp.histogram(
        "queue_wait_seconds",
        snapshot.queue_wait.hist,
        "Time requests queued for a pool worker.",
    )

    requests = exp.family(
        "tenant_requests_total", "counter", "Served requests per tenant."
    )
    answers = exp.family(
        "tenant_answers_total", "counter", "Answer nodes per tenant."
    )
    rejections = exp.family(
        "tenant_rejections_total", "counter", "Rejected requests per tenant."
    )
    for tenant in sorted(snapshot.tenants):
        tm = snapshot.tenants[tenant]
        exp.sample(requests, tm.requests, tenant=tenant)
        exp.sample(answers, tm.answers, tenant=tenant)
        exp.sample(rejections, tm.rejections, tenant=tenant)
    for tenant in sorted(snapshot.tenants):
        exp.histogram(
            "tenant_latency_seconds",
            snapshot.tenants[tenant].latency.hist,
            "Per-tenant evaluation latency.",
            tenant=tenant,
        )
    return exp.render()


def merge_expositions(texts: list[str]) -> str:
    """Fold many exposition texts into one aggregate exposition.

    Families keep the order of their first appearance, with ``HELP`` /
    ``TYPE`` headers emitted once (first declaration wins) and every
    family's samples grouped under its headers as the format requires.
    Samples with an identical ``name{labels}`` body are *summed* — the
    right aggregation for the counters and for the log-bucket histogram
    ``_bucket``/``_sum``/``_count`` triplets, which are mergeable by
    construction.  Workers rendered with distinct ``worker`` labels
    (:func:`render_prometheus`) never collide, so the fleet's merged
    view keeps per-worker resolution while still being one scrape.
    """
    headers: dict[str, list[str]] = {}
    family_order: list[str] = []
    sample_order: dict[str, list[str]] = {}
    values: dict[str, dict[str, float]] = {}
    for text in texts:
        family = None
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                if name not in headers:
                    headers[name] = []
                    family_order.append(name)
                    sample_order[name] = []
                    values[name] = {}
                if line.startswith("# TYPE "):
                    family = name
                if line not in headers[name]:
                    headers[name].append(line)
                continue
            if line.startswith("#"):
                continue
            body, _, raw_value = line.rpartition(" ")
            if not body:
                raise ValueError(f"malformed sample line: {line!r}")
            value = float(raw_value)
            name = body.partition("{")[0]
            # _bucket/_sum/_count samples attach to the TYPE'd family
            # they follow; a headerless text degrades to per-name groups.
            owner = family if family is not None and name.startswith(family) else name
            if owner not in headers:
                headers[owner] = []
                family_order.append(owner)
                sample_order[owner] = []
                values[owner] = {}
            if body not in values[owner]:
                sample_order[owner].append(body)
                values[owner][body] = 0.0
            values[owner][body] += value
    lines: list[str] = []
    for name in family_order:
        lines.extend(headers[name])
        for body in sample_order[name]:
            lines.append(f"{body} {_fmt(values[name][body])}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, dict[str, float]]:
    """A minimal exposition parser: ``{metric: {label_repr: value}}``.

    Not a full client — just enough structure validation for the obs
    smoke and the tests: every non-comment line must be
    ``name{labels} value`` with a float-parseable value, labels
    well-formed.  Raises ``ValueError`` on any malformed line.
    """
    samples: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        body, _, raw_value = line.rpartition(" ")
        if not body:
            raise ValueError(f"malformed sample line: {line!r}")
        value = float(raw_value)  # raises ValueError on garbage
        name, labels = body, ""
        if "{" in body:
            name, _, rest = body.partition("{")
            if not rest.endswith("}"):
                raise ValueError(f"unterminated labels: {line!r}")
            labels = rest[:-1]
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"bad metric name: {name!r}")
        samples.setdefault(name, {})[labels] = value
    return samples
