"""repro.docstore — shared, content-addressed documents and their assets.

The document tier of the serving stack: parse once per content hash,
build each OptHyPE index once per document (persistable via
``--doc-dir``), and hand every tenant/lane/wave the same immutable
:class:`IndexedDocument` with its columnar
:class:`~repro.docstore.layout.DocumentLayout` for the interned hot
loop.
"""

from .document import IndexedDocument, content_digest
from .layout import DocumentLayout, TEXT_ID
from .store import (
    DOC_FORMAT_VERSION,
    DOC_INDEX_SUFFIX,
    DOC_LAYOUT_SUFFIX,
    DocIndexTier,
    DocStoreStats,
    DocumentStore,
)

__all__ = [
    "DOC_FORMAT_VERSION",
    "DOC_INDEX_SUFFIX",
    "DOC_LAYOUT_SUFFIX",
    "DocIndexTier",
    "DocStoreStats",
    "DocumentStore",
    "DocumentLayout",
    "IndexedDocument",
    "TEXT_ID",
    "content_digest",
]
