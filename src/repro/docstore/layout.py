"""Columnar document layout: interned labels + flattened child spans.

HyPE's inner loop spends its Python time on exactly four things per
child visit: reading ``child.label`` (an attribute dereference), testing
``label[0] == "#"`` (the text-node skip), hashing the label string into
the per-``(mstates, relevant)`` child cache, and allocating an iterator
over ``node.children`` (text children included) per visited node.  None
of that work depends on the query — it is a pure function of the frozen
document — so a :class:`DocumentLayout` precomputes it once per
document into flat integer arrays (the array-of-struct layout of
high-throughput tree engines):

* ``labels`` / ``label_ids`` — the interned element-label table
  (dense ids ``0..num_labels-1`` in first-appearance document order);
* ``node_label`` — per ``node_id``, the interned label id
  (:data:`TEXT_ID` for text nodes);
* ``kid_ids`` / ``kid_labels`` / ``kid_start`` — the flattened
  element-children table: node ``i``'s element children are
  ``kid_ids[kid_start[i]:kid_start[i+1]]``, with their label ids in
  the parallel ``kid_labels`` slice.  Text children are excluded at
  build time, so the hot loop never re-tests them.

The evaluator (:meth:`repro.hype.core.CompiledPlan.run` with a
``layout``) walks these arrays instead of :class:`Node` objects and
keys its child-transition rows by integer label id — a list index
instead of a string-keyed dict probe.  Per-``(plan, layout)`` rows live
here (:meth:`DocumentLayout.rows_for`) keyed weakly by plan, because
label ids are *per-document*: a plain-HyPE plan may outlive this
document and serve another one whose interning differs.

Layouts are immutable once built, like the frozen trees they describe,
and therefore freely shared across threads, tenants and lanes.
"""

from __future__ import annotations

import threading
import weakref

from ..xtree.node import Node, XMLTree

#: ``node_label`` entry for text (PCDATA) nodes.
TEXT_ID = -1


class DocumentLayout:
    """Flattened columnar tables of one frozen :class:`XMLTree`."""

    __slots__ = (
        "tree",
        "nodes",
        "labels",
        "label_ids",
        "node_label",
        "kid_ids",
        "kid_labels",
        "kid_start",
        "_freeze_count",
        "_rows",
        "_rows_lock",
        "__weakref__",
    )

    def __init__(self, tree: XMLTree) -> None:
        self.tree = tree
        # The freeze generation this layout snapshots.  index_tree()
        # re-freezes IN PLACE (the nodes list object is reused), so
        # object identity alone cannot detect a re-frozen tree — the
        # stamp makes covers() stand down and the evaluator fall back
        # to the always-correct string path.
        self._freeze_count = getattr(tree, "freeze_count", 0)
        #: Document-order node list (``nodes[i].node_id == i``) — the
        #: bridge back from columnar ids to the Node objects answers,
        #: predicates and phase 2 operate on.
        self.nodes: list[Node] = tree.nodes
        self.labels: list[str] = []
        self.label_ids: dict[str, int] = {}
        size = len(tree.nodes)
        self.node_label: list[int] = [TEXT_ID] * size
        self.kid_ids: list[int] = []
        self.kid_labels: list[int] = []
        self.kid_start: list[int] = [0] * (size + 1)
        self._build()
        #: plan -> {(m_id, r_id) -> row}; weak keys so an evicted plan
        #: releases its rows with it.
        self._rows: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._rows_lock = threading.Lock()

    def _build(self) -> None:
        label_ids = self.label_ids
        labels = self.labels
        node_label = self.node_label
        for node in self.nodes:
            if node.is_element:
                lid = label_ids.get(node.label)
                if lid is None:
                    lid = label_ids[node.label] = len(labels)
                    labels.append(node.label)
                node_label[node.node_id] = lid
        kid_ids = self.kid_ids
        kid_labels = self.kid_labels
        kid_start = self.kid_start
        for node in self.nodes:
            kid_start[node.node_id] = len(kid_ids)
            for child in node.children:
                cid = child.node_id
                lid = node_label[cid]
                if lid != TEXT_ID:
                    kid_ids.append(cid)
                    kid_labels.append(lid)
        kid_start[len(self.nodes)] = len(kid_ids)

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        tree: XMLTree,
        labels,
        node_label,
        kid_ids,
        kid_labels,
        kid_start,
    ) -> "DocumentLayout":
        """Rehydrate a layout from already-built columns — no tree walk.

        The persistence path (:meth:`repro.docstore.store.DocIndexTier.
        load_layout`) hands in zero-copy ``memoryview`` casts over an
        mmap'ed sidecar; the hot loop only ever *indexes* the columns,
        so views serve exactly like the lists ``_build`` produces (and
        they keep the mapping alive for as long as the layout lives).
        Only ``labels``/``label_ids`` are materialised, because the fill
        path looks labels up by string.
        """
        layout = cls.__new__(cls)
        layout.tree = tree
        layout._freeze_count = getattr(tree, "freeze_count", 0)
        layout.nodes = tree.nodes
        layout.labels = list(labels)
        layout.label_ids = {
            label: lid for lid, label in enumerate(layout.labels)
        }
        layout.node_label = node_label
        layout.kid_ids = kid_ids
        layout.kid_labels = kid_labels
        layout.kid_start = kid_start
        layout._rows = weakref.WeakKeyDictionary()
        layout._rows_lock = threading.Lock()
        return layout

    # ------------------------------------------------------------------
    @property
    def num_labels(self) -> int:
        return len(self.labels)

    def span(self, node_id: int) -> tuple[int, int]:
        """The ``kid_ids``/``kid_labels`` span of a node's element kids."""
        return self.kid_start[node_id], self.kid_start[node_id + 1]

    def covers(self, node: Node) -> bool:
        """Whether ``node`` belongs to this layout's document *as frozen*.

        The columnar run indexes the tables by ``node_id``, so it is
        only valid for nodes of the tree the layout was built from —
        and only for the freeze it snapshotted: a structural edit +
        :func:`repro.xtree.node.index_tree` re-freeze bumps the tree's
        ``freeze_count``, after which this layout stands down (the
        evaluator falls back to the string path) instead of silently
        serving the stale structure.
        """
        if getattr(self.tree, "freeze_count", 0) != self._freeze_count:
            return False
        node_id = node.node_id
        return 0 <= node_id < len(self.nodes) and self.nodes[node_id] is node

    # ------------------------------------------------------------------
    def rows_for(self, plan) -> dict:
        """The per-``(plan, layout)`` child-transition row table.

        Rows map a dense-kernel cfg id to an ``array('i')`` indexed by
        label id whose entries are packed transition words (``UNFILLED``
        until first computed) — see :mod:`repro.hype.kernel`.  Entries
        are a deterministic function of their key, so concurrent fills
        are benign — the same contract as the plan's own string-keyed
        tables.
        """
        rows = self._rows.get(plan)
        if rows is None:
            with self._rows_lock:
                rows = self._rows.get(plan)
                if rows is None:
                    rows = self._rows[plan] = {}
        return rows

    def memory_entries(self) -> int:
        """Footprint proxy: total stored integers across the tables."""
        return (
            len(self.node_label)
            + len(self.kid_ids)
            + len(self.kid_labels)
            + len(self.kid_start)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DocumentLayout(nodes={len(self.nodes)}, "
            f"labels={len(self.labels)}, kids={len(self.kid_ids)})"
        )
