"""A parsed-and-frozen document plus every derived, shareable asset.

The paper's single-pass guarantee makes the *document-side* assets — the
parsed tree, the columnar layout and the OptHyPE subtree-label indexes —
strictly more valuable than any per-query state: they are shared by every
tenant, lane, wave and algorithm variant that touches the document.  An
:class:`IndexedDocument` bundles them under build-exactly-once semantics:

* ``tree`` — the frozen :class:`repro.xtree.node.XMLTree`;
* ``layout`` — the interned columnar tables
  (:class:`repro.docstore.layout.DocumentLayout`), built eagerly so the
  evaluator hot loop is columnar from the first request;
* ``index_for(compressed)`` — the OptHyPE (or OptHyPE-C) index, built
  at most once per variant behind a per-variant lock; when the owning
  :class:`repro.docstore.store.DocumentStore` has a persistent tier
  (``--doc-dir``), a previously-persisted index is loaded instead of
  rebuilt and fresh builds are written back.

``index_for`` also satisfies the index-provider protocol of
:meth:`repro.hype.core.CompiledPlan.for_algorithm`, so an
:class:`IndexedDocument` can be passed wherever the older per-service
``dict[bool, Index]`` cache went — with the difference that N concurrent
cold requests now trigger exactly ONE build (counted in
``stats.index_builds``) instead of racing N.
"""

from __future__ import annotations

import hashlib
import threading

from ..hype.index import Index, build_index
from ..obs.trace import span
from ..xtree.node import XMLTree
from .layout import DocumentLayout


def content_digest(content: str) -> str:
    """The content address of a document: sha256 over its XML text."""
    return hashlib.sha256(content.encode("utf-8")).hexdigest()


class IndexedDocument:
    """One frozen document plus its shared layout and indexes.

    Instances are immutable from the caller's point of view: the tree
    and layout never change, and the index slots only ever go from
    unbuilt to built.  Safe to share across threads and services.

    ``stats`` is the (possibly store-shared) counter block index builds
    and tier hits are recorded into; ``tier`` is the optional on-disk
    index tier.  Both default to private/absent for stand-alone use.
    """

    def __init__(
        self,
        tree: XMLTree,
        content_hash: str | None = None,
        stats=None,
        tier=None,
    ) -> None:
        from .store import DocStoreStats  # cycle-free at call time

        self.tree = tree
        self._content_hash = content_hash
        self.stats = stats if stats is not None else DocStoreStats()
        self.tier = tier
        # The layout is eager either way; with an addressed document and
        # a persistent tier, a previously-saved binary sidecar replaces
        # the build's tree walk (and fresh builds are written back).
        layout = None
        if tier is not None and content_hash is not None:
            layout = tier.load_layout(content_hash, tree)
        if layout is None:
            layout = DocumentLayout(tree)
            if tier is not None and content_hash is not None:
                tier.save_layout(content_hash, layout)
        self.layout = layout
        self._indexes: dict[bool, Index] = {}
        self._index_locks = {False: threading.Lock(), True: threading.Lock()}
        self._hash_lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def from_content(cls, content: str, **kwargs) -> "IndexedDocument":
        """Parse ``content`` into a frozen, addressed document.

        The address is the hash of the *canonical* serialisation (the
        same scheme :class:`repro.docstore.store.DocumentStore` uses),
        so textual variants of one document share one address.
        """
        from ..xtree.parse import parse_xml

        tree = parse_xml(content)
        return cls(tree, **kwargs)

    @property
    def content_hash(self) -> str:
        """The document's content address (computed lazily when adopted).

        Documents parsed from text carry the hash of that text; trees
        built in memory (generators, tests) are hashed over their
        canonical serialisation on first need — deterministic, so a
        regenerated document (same config, same seed) addresses the
        same persisted indexes across restarts.
        """
        digest = self._content_hash
        if digest is None:
            with self._hash_lock:
                digest = self._content_hash
                if digest is None:
                    from ..xtree.serialize import serialize

                    digest = content_digest(serialize(self.tree))
                    self._content_hash = digest
        return digest

    # ------------------------------------------------------------------
    @property
    def root(self):
        """The document root (mirrors :class:`XMLTree` for callers)."""
        return self.tree.root

    @property
    def size(self) -> int:
        return self.tree.size

    # ------------------------------------------------------------------
    def index_for(self, compressed: bool) -> Index:
        """The OptHyPE(-C) index, built (or tier-loaded) exactly once.

        The per-variant lock makes N threads racing a cold document
        converge on one build; ``stats.index_builds`` counts real
        constructions, ``stats.index_loads`` counts tier rehydrations.
        """
        index = self._indexes.get(compressed)
        if index is not None:
            return index
        with self._index_locks[compressed]:
            index = self._indexes.get(compressed)
            if index is not None:
                return index
            index = None
            if self.tier is not None:
                index = self.tier.load(
                    self.content_hash, compressed, self.tree.size
                )
            if index is None:
                with span(
                    "docstore.index_build",
                    compressed=compressed,
                    size=self.tree.size,
                ):
                    index = build_index(self.tree, compressed=compressed)
                self.stats.count("index_builds")
                if self.tier is not None:
                    self.tier.save(self.content_hash, compressed, index)
            self._indexes[compressed] = index
            return index

    def built_indexes(self) -> dict[bool, Index]:
        """Snapshot of the variants already built (for introspection)."""
        return dict(self._indexes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        short = (self._content_hash or "?")[:12]
        return f"IndexedDocument({short}, size={self.tree.size})"
