"""Content-addressed document store + persistent OptHyPE index tier.

The serving stack used to treat documents as caller-owned: every
service, tenant and benchmark run re-parsed the same XML and rebuilt the
same OptHyPE index.  The :class:`DocumentStore` makes documents a shared,
content-addressed asset instead:

* ``get(content)`` hashes the XML text (sha256) and parses **at most
  once per content hash** — concurrent cold requests for one document
  wait on a per-key gate and receive the same shared
  :class:`repro.docstore.document.IndexedDocument`;
* every holder of that document shares one columnar layout and one
  OptHyPE index per variant (built exactly once, see
  :meth:`IndexedDocument.index_for`);
* with a persistent tier (``--doc-dir``), built indexes are serialised
  to disk — version-tagged, atomically written, validated on load — so
  a restarted service skips index construction for previously-seen
  documents just as ``--plan-dir`` lets it skip the MFA rewrite;
* the columnar :class:`repro.docstore.layout.DocumentLayout` is
  persisted alongside as a **binary, mmap-able sidecar**
  (``.doclay.bin``: a fixed header + int32 little-endian columns), so a
  cold worker that re-parses a known document rehydrates the layout
  tables as zero-copy views over the mapped file instead of re-walking
  the tree — and never touches a JSON decoder on the hot start path.

Durability policy mirrors :class:`repro.compile.store.PlanStore`:
atomic tmp-file + ``os.replace`` writes, corruption/version/shape
mismatches are counted misses (the index is rebuilt and the file
overwritten), and an unwritable disk degrades to memory-only operation
— it never fails serving.  :meth:`DocIndexTier.gc` reclaims files the
current version will never read (old-version filenames, foreign files
under the tier's suffixes, stale headers).

**Trust boundary.** Like the plan store, validation is structural, not
cryptographic: point ``--doc-dir`` only at directories writable solely
by principals as trusted as the service process itself.
"""

from __future__ import annotations

import gzip
import json
import mmap
import os
import struct
import sys
import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..faults import fire as _fault_fire
from ..hype.index import (
    CompressedLabelIndex,
    Index,
    LabelBits,
    SubtreeLabelIndex,
)
from ..xtree.node import XMLTree
from .document import IndexedDocument, content_digest
from .layout import DocumentLayout

#: Version of the persisted document-tier format.  Bump whenever a
#: payload layout or the index semantics change; old files then simply
#: stop matching (their filename carries the version) and are rebuilt —
#: :meth:`DocIndexTier.gc` reclaims them.
#: v2: adds the binary mmap-able layout sidecar (``.doclay.bin``); v1
#: index files are never looked up again and are swept by ``gc``.
DOC_FORMAT_VERSION = 2

#: Suffix of index files inside a ``--doc-dir``.
DOC_INDEX_SUFFIX = ".docidx.json.gz"

#: Suffix of binary document-layout sidecars inside a ``--doc-dir``.
DOC_LAYOUT_SUFFIX = ".doclay.bin"

#: Magic prefix of a layout sidecar.  The fixed-size header that
#: follows: format version, the 64-hex-char content-hash echo, then the
#: node/label/kid counts and the byte length of the label blob — all
#: little-endian u32, so the column offsets are computable without
#: reading anything else.
_LAYOUT_MAGIC = b"RLAY"
_LAYOUT_HEADER = struct.Struct("<4sI64s4I")


@dataclass
class DocStoreStats:
    """Document-tier counters (a point-in-time copy is a snapshot).

    ``hits``/``misses`` count in-memory document resolutions (a miss is
    a parse or adoption); ``index_builds`` counts real OptHyPE index
    constructions — the number the whole tier exists to minimise —
    while ``index_loads``/``index_stores`` count the persistent tier's
    rehydrations and write-backs, and ``layout_loads``/``layout_stores``
    the same for the binary layout sidecars.  ``corrupt`` counts on-disk
    files that failed validation (rebuilt and overwritten), ``errors``
    counts I/O failures, ``evictions`` counts LRU drops, ``gc_removed``
    counts files reclaimed by :meth:`DocIndexTier.gc`.
    """

    hits: int = 0
    misses: int = 0
    index_builds: int = 0
    index_loads: int = 0
    index_stores: int = 0
    layout_loads: int = 0
    layout_stores: int = 0
    corrupt: int = 0
    errors: int = 0
    evictions: int = 0
    gc_removed: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def count(self, *fields: str, n: int = 1) -> None:
        with self._lock:
            for name in fields:
                setattr(self, name, getattr(self, name) + n)

    def snapshot(self) -> "DocStoreStats":
        with self._lock:
            return DocStoreStats(
                self.hits,
                self.misses,
                self.index_builds,
                self.index_loads,
                self.index_stores,
                self.layout_loads,
                self.layout_stores,
                self.corrupt,
                self.errors,
                self.evictions,
                self.gc_removed,
            )


class DocIndexTier:
    """The on-disk index tier of one ``--doc-dir`` directory."""

    def __init__(self, root: str | os.PathLike, stats: DocStoreStats) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = stats

    # ------------------------------------------------------------------
    def path_for(self, content_hash: str, compressed: bool) -> Path:
        """The index file backing one ``(document, variant)`` pair.

        The filename spells out its key (the content hash is already a
        safe hex string), so operators can audit a directory directly
        and version bumps leave old files visibly stale.
        """
        variant = "c" if compressed else "u"
        return self.root / (
            f"{content_hash}.{variant}.v{DOC_FORMAT_VERSION}{DOC_INDEX_SUFFIX}"
        )

    def layout_path_for(self, content_hash: str) -> Path:
        """The binary layout sidecar backing one document."""
        return self.root / (
            f"{content_hash}.v{DOC_FORMAT_VERSION}{DOC_LAYOUT_SUFFIX}"
        )

    # ------------------------------------------------------------------
    def load(
        self, content_hash: str, compressed: bool, expected_size: int
    ) -> Index | None:
        """Rehydrate a persisted index, or ``None`` on any miss.

        Validation is strict: version, content hash and variant must
        echo the key, the mask arrays must cover exactly
        ``expected_size`` nodes, and the payload must decode.  Any
        failure counts as ``corrupt`` (the caller rebuilds and the next
        save overwrites the bad file).
        """
        path = self.path_for(content_hash, compressed)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.count("errors")
            return None
        fault = _fault_fire("doc-tier.load")
        if fault is not None and fault.action == "corrupt":
            # Deterministic bit-rot: decoding fails below and takes the
            # tier's normal corruption path (counted rebuild + overwrite).
            raw = raw[: len(raw) // 2]
        try:
            payload = json.loads(gzip.decompress(raw).decode("utf-8"))
            index = _index_from_payload(
                payload, content_hash, compressed, expected_size
            )
        except (OSError, EOFError, ValueError, KeyError, TypeError):
            # EOFError: gzip's truncated-stream signal — a half-written
            # or bit-rotted file must degrade to a counted rebuild, not
            # fail serving.
            self.stats.count("corrupt")
            return None
        self.stats.count("index_loads")
        return index

    def save(self, content_hash: str, compressed: bool, index: Index) -> bool:
        """Persist ``index`` atomically (best effort; failures counted)."""
        path = self.path_for(content_hash, compressed)
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        payload = _index_to_payload(index, content_hash, compressed)
        try:
            tmp.write_bytes(
                gzip.compress(
                    json.dumps(
                        payload, sort_keys=True, separators=(",", ":")
                    ).encode("utf-8"),
                    mtime=0,
                )
            )
            os.replace(tmp, path)
        except OSError:
            self.stats.count("errors")
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stats.count("index_stores")
        return True

    # ------------------------------------------------------------------
    def load_layout(
        self, content_hash: str, tree: XMLTree
    ) -> DocumentLayout | None:
        """Rehydrate the binary layout sidecar, or ``None`` on any miss.

        The file is mapped, not read: the integer columns become
        zero-copy ``memoryview`` casts over the mapping (big-endian
        hosts fall back to a byte-swapped copy), so a cold worker pays
        one header validation instead of a tree walk — and no JSON.
        The mapping stays alive exactly as long as the views into it.
        """
        path = self.layout_path_for(content_hash)
        try:
            with open(path, "rb") as handle:
                buf = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # ValueError: mmap of an empty (half-created) file.
            self.stats.count("corrupt")
            return None
        try:
            layout = _layout_from_buffer(buf, content_hash, tree)
        except ValueError:
            # No explicit close: views into the mapping may survive in
            # the (suppressed) traceback; the GC reclaims both together.
            self.stats.count("corrupt")
            return None
        self.stats.count("layout_loads")
        return layout

    def save_layout(self, content_hash: str, layout: DocumentLayout) -> bool:
        """Persist ``layout`` atomically (best effort; failures counted)."""
        path = self.layout_path_for(content_hash)
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            tmp.write_bytes(_layout_to_bytes(layout, content_hash))
            os.replace(tmp, path)
        except OSError:
            self.stats.count("errors")
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        self.stats.count("layout_stores")
        return True

    # ------------------------------------------------------------------
    def gc(self) -> int:
        """Remove tier files the current format will never read.

        Sweeps anything under the tier's suffixes that the running
        version cannot serve: files whose name does not carry the
        current ``.v{DOC_FORMAT_VERSION}`` tag (every pre-bump file),
        and current-version layout sidecars whose header fails
        validation (wrong magic/version/hash echo — e.g. a renamed or
        half-corrupted file).  Unknown files are left alone.  Returns
        the number removed (also counted in ``stats.gc_removed``).
        """
        tag = f".v{DOC_FORMAT_VERSION}"
        removed = 0
        try:
            entries = sorted(self.root.iterdir())
        except OSError:
            self.stats.count("errors")
            return 0
        for path in entries:
            name = path.name
            if name.endswith(DOC_INDEX_SUFFIX):
                stale = not name.endswith(f"{tag}{DOC_INDEX_SUFFIX}")
            elif name.endswith(DOC_LAYOUT_SUFFIX):
                stale = not name.endswith(
                    f"{tag}{DOC_LAYOUT_SUFFIX}"
                ) or not self._layout_header_ok(path)
            else:
                continue
            if not stale:
                continue
            try:
                path.unlink()
            except OSError:
                self.stats.count("errors")
                continue
            removed += 1
            self.stats.count("gc_removed")
        return removed

    def _layout_header_ok(self, path: Path) -> bool:
        """Whether a current-version sidecar's header echoes its name."""
        try:
            with open(path, "rb") as handle:
                head = handle.read(_LAYOUT_HEADER.size)
        except OSError:
            return False
        if len(head) != _LAYOUT_HEADER.size:
            return False
        magic, version, hash_bytes = _LAYOUT_HEADER.unpack(head)[:3]
        return (
            magic == _LAYOUT_MAGIC
            and version == DOC_FORMAT_VERSION
            and hash_bytes == path.name.split(".", 1)[0].encode("ascii")
        )

    def __len__(self) -> int:
        """Number of index files currently in the tier."""
        return sum(1 for _ in self.root.glob(f"*{DOC_INDEX_SUFFIX}"))


def _index_to_payload(
    index: Index, content_hash: str, compressed: bool
) -> dict:
    """The self-describing JSON record of one built index.

    ``bits`` is the label→bit assignment in bit order — serialising the
    actual assignment makes a rehydrated index behave *identically* to
    the one that was built (same masks, same viability cache keys).
    """
    in_order = sorted(index.bits.bit_of, key=index.bits.bit_of.__getitem__)
    payload = {
        "doc_format_version": DOC_FORMAT_VERSION,
        "content_hash": content_hash,
        "compressed": compressed,
        "bits": in_order,
    }
    if compressed:
        payload["mask_table"] = list(index.mask_table)
        payload["ids"] = list(index.ids)
    else:
        payload["masks"] = list(index.masks)
    return payload


def _index_from_payload(
    payload: dict, content_hash: str, compressed: bool, expected_size: int
) -> Index:
    """Decode and validate one index record (raises ``ValueError``)."""
    if payload.get("doc_format_version") != DOC_FORMAT_VERSION:
        raise ValueError("document-index format version mismatch")
    if payload.get("content_hash") != content_hash:
        raise ValueError("document-index content hash mismatch")
    if payload.get("compressed") is not compressed:
        raise ValueError("document-index variant mismatch")
    labels = payload["bits"]
    if not isinstance(labels, list) or not all(
        isinstance(label, str) for label in labels
    ):
        raise ValueError("document-index bits must be a list of labels")
    bits = LabelBits()
    for label in labels:
        bits.bit(label)
    if len(bits.bit_of) != len(labels):
        raise ValueError("document-index bit labels must be unique")
    if compressed:
        table = _int_list(payload["mask_table"])
        ids = _int_list(payload["ids"])
        if len(ids) != expected_size:
            raise ValueError("document-index id array does not cover the tree")
        if ids and not (0 <= min(ids) and max(ids) < len(table)):
            raise ValueError("document-index ids point outside the mask table")
        return CompressedLabelIndex.from_parts(bits, table, ids)
    masks = _int_list(payload["masks"])
    if len(masks) != expected_size:
        raise ValueError("document-index mask array does not cover the tree")
    return SubtreeLabelIndex.from_parts(bits, masks)


def _int_list(values: object) -> list[int]:
    if not isinstance(values, list) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in values
    ):
        raise ValueError("document-index arrays must hold integers")
    return values


# ----------------------------------------------------------------------
# Binary layout sidecar codec.  The record is header + label blob +
# four int32 little-endian columns:
#
#   RLAY | u32 version | 64s content-hash | u32 num_nodes
#        | u32 num_labels | u32 num_kids | u32 label-blob length
#   labels blob (utf-8, NUL-joined, zero-padded to a 4-byte boundary)
#   node_label[num_nodes]  kid_ids[num_kids]  kid_labels[num_kids]
#   kid_start[num_nodes + 1]
#
# Fixed offsets and int32 columns make the load a handful of pointer
# arithmetic operations over an mmap — the whole point of the format.


def _int32_bytes(values) -> bytes:
    """``values`` as int32 little-endian bytes (host-order agnostic)."""
    column = array("i", values)
    if column.itemsize != 4:  # pragma: no cover - exotic platforms
        column = array("l", values)
        assert column.itemsize == 4
    if sys.byteorder == "big":  # pragma: no cover - big-endian hosts
        column.byteswap()
    return column.tobytes()


def _int32_column(view: memoryview, offset: int, count: int):
    """A zero-copy int32 view over ``view[offset:]`` (copy on BE hosts)."""
    window = view[offset : offset + 4 * count]
    if sys.byteorder == "little":
        return window.cast("i")
    column = array("i")  # pragma: no cover - big-endian hosts
    column.frombytes(window.tobytes())
    column.byteswap()
    return column


def _layout_to_bytes(layout: DocumentLayout, content_hash: str) -> bytes:
    """Serialise one built layout into the binary sidecar record."""
    blob = "\x00".join(layout.labels).encode("utf-8")
    padding = -len(blob) % 4
    num_nodes = len(layout.node_label)
    parts = [
        _LAYOUT_HEADER.pack(
            _LAYOUT_MAGIC,
            DOC_FORMAT_VERSION,
            content_hash.encode("ascii"),
            num_nodes,
            len(layout.labels),
            len(layout.kid_ids),
            len(blob),
        ),
        blob,
        b"\x00" * padding,
        _int32_bytes(layout.node_label),
        _int32_bytes(layout.kid_ids),
        _int32_bytes(layout.kid_labels),
        _int32_bytes(layout.kid_start),
    ]
    return b"".join(parts)


def _layout_from_buffer(
    buf, content_hash: str, tree: XMLTree
) -> DocumentLayout:
    """Decode and validate one sidecar (raises ``ValueError``).

    Validation is structural and O(1) in the document size: magic,
    version and hash echo, the node count against the live tree, exact
    file length for the declared counts, and the span-table endpoints.
    The columns themselves are trusted — same boundary as the index
    records (a ``--doc-dir`` is as trusted as the process).
    """
    view = memoryview(buf)
    if len(view) < _LAYOUT_HEADER.size:
        raise ValueError("document-layout sidecar is truncated")
    (
        magic,
        version,
        hash_bytes,
        num_nodes,
        num_labels,
        num_kids,
        blob_len,
    ) = _LAYOUT_HEADER.unpack_from(view, 0)
    if magic != _LAYOUT_MAGIC:
        raise ValueError("document-layout magic mismatch")
    if version != DOC_FORMAT_VERSION:
        raise ValueError("document-layout format version mismatch")
    if hash_bytes != content_hash.encode("ascii"):
        raise ValueError("document-layout content hash mismatch")
    if num_nodes != len(tree.nodes):
        raise ValueError("document-layout node count does not cover the tree")
    offset = _LAYOUT_HEADER.size + blob_len + (-blob_len % 4)
    expected = offset + 4 * (num_nodes + 2 * num_kids + num_nodes + 1)
    if len(view) != expected:
        raise ValueError("document-layout column lengths do not match header")
    blob = bytes(view[_LAYOUT_HEADER.size : _LAYOUT_HEADER.size + blob_len])
    labels = blob.decode("utf-8").split("\x00") if blob else []
    if len(labels) != num_labels or len(set(labels)) != num_labels:
        raise ValueError("document-layout label table is malformed")
    node_label = _int32_column(view, offset, num_nodes)
    offset += 4 * num_nodes
    kid_ids = _int32_column(view, offset, num_kids)
    offset += 4 * num_kids
    kid_labels = _int32_column(view, offset, num_kids)
    offset += 4 * num_kids
    kid_start = _int32_column(view, offset, num_nodes + 1)
    if num_nodes and (kid_start[0] != 0 or kid_start[num_nodes] != num_kids):
        raise ValueError("document-layout span table is malformed")
    return DocumentLayout.from_arrays(
        tree, labels, node_label, kid_ids, kid_labels, kid_start
    )


class DocumentStore:
    """A bounded, content-addressed cache of shared indexed documents.

    Thread-safe.  Cold content is parsed (and its layout built) exactly
    once behind a per-hash resolution gate — the same no-thundering-herd
    discipline as :class:`repro.serve.cache.PlanCache` — and every
    caller receives the same shared :class:`IndexedDocument`, so their
    index builds converge too.
    """

    def __init__(
        self,
        capacity: int = 16,
        index_dir: str | os.PathLike | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"store capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = DocStoreStats()
        self.tier = (
            DocIndexTier(index_dir, self.stats) if index_dir else None
        )
        self._docs: OrderedDict[str, IndexedDocument] = OrderedDict()
        #: raw-text digest -> canonical digest.  Documents are ADDRESSED
        #: by the hash of their canonical serialisation (so a file with
        #: a trailing newline, odd whitespace, or entity variants shares
        #: one entry — and one persisted index — with its canonical
        #: form); raw digests are kept only as a fast path that lets a
        #: repeated ``get`` of the same text skip the re-parse.
        self._aliases: dict[str, str] = {}
        self._lock = threading.Lock()
        self._resolving: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    def get(self, content: str) -> IndexedDocument:
        """The shared document for ``content`` (parsed at most once).

        The entry is keyed by the *canonical* content address (hash of
        the parsed tree's canonical serialisation), so every textual
        variant of one document — and every ``adopt`` of its tree —
        resolves to the same shared entry and the same ``--doc-dir``
        index files.
        """
        raw_digest = content_digest(content)
        while True:
            with self._lock:
                canonical = self._aliases.get(raw_digest)
                if canonical is not None:
                    doc = self._docs.get(canonical)
                    if doc is not None:
                        self._docs.move_to_end(canonical)
                        self.stats.count("hits")
                        return doc
                gate = self._resolving.get(raw_digest)
                if gate is None:
                    gate = self._resolving[raw_digest] = threading.Lock()
                    gate.acquire()
                    break
            with gate:
                pass
        try:
            from ..xtree.parse import parse_xml
            from ..xtree.serialize import serialize

            tree = parse_xml(content)
            canonical = content_digest(serialize(tree))
            with self._lock:
                self._alias(raw_digest, canonical)
                doc = self._docs.get(canonical)
                if doc is not None:
                    # Another textual variant already registered this
                    # document: share its entry (the parse was the alias
                    # table's warm-up cost, paid once per variant).
                    self._docs.move_to_end(canonical)
                    self.stats.count("hits")
                    return doc
            doc = IndexedDocument(
                tree, canonical, stats=self.stats, tier=self.tier
            )
            self._insert(canonical, doc)
            return doc
        finally:
            with self._lock:
                self._resolving.pop(raw_digest, None)
            gate.release()

    def adopt(self, tree: XMLTree) -> IndexedDocument:
        """Register an already-parsed tree under its content address.

        The address is the hash of the tree's canonical serialisation —
        the same scheme :meth:`get` resolves to — so an adopted
        generator-built document and the same document parsed from any
        textual variant share one entry (and one index).
        """
        from ..xtree.serialize import serialize

        return self._get(
            content_digest(serialize(tree)),
            lambda digest: IndexedDocument(
                tree, digest, stats=self.stats, tier=self.tier
            ),
        )

    def resolve(
        self, content_hash: str, uses: int = 1
    ) -> IndexedDocument | None:
        """The live document at ``content_hash``, or ``None``.

        The request-path lookup: a hit refreshes LRU recency and counts
        toward ``hits`` (the shared-document proof the metrics surface);
        a miss counts too, and the caller falls back to whatever strong
        reference it holds (or re-``get``s with the content).  ``uses``
        is the number of requests this one lookup serves — a batched
        wave resolves once but counts every admitted request, so the
        hit counter stays comparable across serving paths.
        """
        with self._lock:
            doc = self._docs.get(content_hash)
            if doc is None:
                self.stats.count("misses")
                return None
            self._docs.move_to_end(content_hash)
            self.stats.count("hits", n=uses)
            return doc

    # ------------------------------------------------------------------
    def _get(self, digest: str, factory) -> IndexedDocument:
        while True:
            with self._lock:
                doc = self._docs.get(digest)
                if doc is not None:
                    self._docs.move_to_end(digest)
                    self.stats.count("hits")
                    return doc
                gate = self._resolving.get(digest)
                if gate is None:
                    gate = self._resolving[digest] = threading.Lock()
                    gate.acquire()
                    break
            with gate:
                pass
        try:
            doc = factory(digest)
            self._insert(digest, doc)
            return doc
        finally:
            with self._lock:
                self._resolving.pop(digest, None)
            gate.release()

    def _insert(self, digest: str, doc: IndexedDocument) -> None:
        with self._lock:
            self.stats.count("misses")
            self._docs[digest] = doc
            while len(self._docs) > self.capacity:
                self._docs.popitem(last=False)
                self.stats.count("evictions")

    def _alias(self, raw_digest: str, canonical: str) -> None:
        """Record the raw→canonical mapping (bounded; callers hold the
        lock).  The table is a pure fast path, so clearing it on
        overflow costs only re-parses, never correctness."""
        if len(self._aliases) >= max(64, 4 * self.capacity):
            self._aliases.clear()
        self._aliases[raw_digest] = canonical

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def __contains__(self, content_hash: str) -> bool:
        with self._lock:
            return content_hash in self._docs

    def snapshot_stats(self) -> DocStoreStats:
        return self.stats.snapshot()
