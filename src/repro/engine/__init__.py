"""The SMOQE engine facade."""

from .smoqe import QueryAnswer, SMOQE

__all__ = ["SMOQE", "QueryAnswer"]
