"""SMOQE — the Secure MOdular Query Engine (the paper's prototype [10]).

The deployment scenario of Section 1: a server holds an XML document; each
user group is given a *virtual* view (their authorised window on the data)
and poses (regular) XPath queries against it.  The engine

1. rewrites the view query into an MFA over the source (Algorithm
   ``rewrite``, Section 5) — cached per (view, query);
2. evaluates the MFA with HyPE (or an OptHyPE variant) directly on the
   source document — no view is ever materialised;
3. returns the answers.

The engine doubles as a stand-alone regular-XPath engine (the paper calls
SMOQE "the first regular XPath engine"): :meth:`SMOQE.evaluate` compiles
and runs any ``Xreg`` query on the source document.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata.compile import compile_query
from ..automata.mfa import MFA
from ..errors import ViewError
from ..hype.analyze import ViabilityAnalyzer
from ..hype.api import ALGORITHMS, HYPE, OPTHYPE, OPTHYPE_C
from ..hype.core import HyPEEvaluator, HyPEStats
from ..hype.index import build_index
from ..rewrite.mfa_rewrite import rewrite_query
from ..views.spec import ViewSpec
from ..xpath import ast
from ..xpath.parser import parse_query
from ..xpath.unparse import unparse
from ..xtree.node import Node, XMLTree


@dataclass
class QueryAnswer:
    """Answer set plus provenance of how it was computed."""

    nodes: set[Node]
    mfa: MFA
    stats: HyPEStats
    algorithm: str
    view: str | None = None
    query_text: str = ""

    def ids(self) -> list[int]:
        """Sorted document-order node ids (stable for display/tests)."""
        return sorted(node.node_id for node in self.nodes)


@dataclass
class _ViewEntry:
    spec: ViewSpec
    rewrites: dict[str, MFA] = field(default_factory=dict)


class SMOQE:
    """One engine instance serves one source document and many views."""

    def __init__(self, document: XMLTree, default_algorithm: str = HYPE) -> None:
        if default_algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {default_algorithm!r}")
        self.document = document
        self.default_algorithm = default_algorithm
        self._views: dict[str, _ViewEntry] = {}
        self._indexes: dict[bool, object] = {}
        self._compiled: dict[str, MFA] = {}

    # ------------------------------------------------------------------
    # View administration
    # ------------------------------------------------------------------
    def register_view(self, name: str, spec: ViewSpec) -> None:
        """Register a view definition under ``name``."""
        if name in self._views:
            raise ViewError(f"view {name!r} already registered")
        self._views[name] = _ViewEntry(spec)

    def views(self) -> list[str]:
        """Registered view names."""
        return sorted(self._views)

    def view_spec(self, name: str) -> ViewSpec:
        """The specification registered under ``name``."""
        try:
            return self._views[name].spec
        except KeyError:
            raise ViewError(f"unknown view {name!r}") from None

    # ------------------------------------------------------------------
    # Query answering on views (the headline feature)
    # ------------------------------------------------------------------
    def answer(
        self,
        view: str,
        query: str | ast.Path,
        algorithm: str | None = None,
    ) -> QueryAnswer:
        """Answer a query posed on a *virtual* view.

        The rewriting is cached, so repeated queries over the same view pay
        only evaluation time.
        """
        entry = self._views.get(view)
        if entry is None:
            raise ViewError(f"unknown view {view!r}")
        query_ast = parse_query(query) if isinstance(query, str) else query
        query_text = unparse(query_ast)
        mfa = entry.rewrites.get(query_text)
        if mfa is None:
            mfa = rewrite_query(entry.spec, query_ast)
            entry.rewrites[query_text] = mfa
        nodes, stats, algo = self._run(mfa, algorithm)
        return QueryAnswer(nodes, mfa, stats, algo, view=view, query_text=query_text)

    def rewrite(self, view: str, query: str | ast.Path) -> MFA:
        """Expose the rewritten MFA (for inspection or external evaluation)."""
        entry = self._views.get(view)
        if entry is None:
            raise ViewError(f"unknown view {view!r}")
        query_ast = parse_query(query) if isinstance(query, str) else query
        query_text = unparse(query_ast)
        mfa = entry.rewrites.get(query_text)
        if mfa is None:
            mfa = rewrite_query(entry.spec, query_ast)
            entry.rewrites[query_text] = mfa
        return mfa

    # ------------------------------------------------------------------
    # Stand-alone regular XPath engine
    # ------------------------------------------------------------------
    def evaluate(
        self, query: str | ast.Path, algorithm: str | None = None
    ) -> QueryAnswer:
        """Evaluate a (regular) XPath query directly on the source."""
        query_ast = parse_query(query) if isinstance(query, str) else query
        query_text = unparse(query_ast)
        mfa = self._compiled.get(query_text)
        if mfa is None:
            mfa = compile_query(query_ast, description=query_text)
            self._compiled[query_text] = mfa
        nodes, stats, algo = self._run(mfa, algorithm)
        return QueryAnswer(nodes, mfa, stats, algo, query_text=query_text)

    # ------------------------------------------------------------------
    def _run(self, mfa: MFA, algorithm: str | None):
        algo = algorithm or self.default_algorithm
        if algo not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algo!r}")
        if algo == HYPE:
            evaluator = HyPEEvaluator(mfa)
        else:
            compressed = algo == OPTHYPE_C
            index = self._indexes.get(compressed)
            if index is None:
                index = build_index(self.document, compressed=compressed)
                self._indexes[compressed] = index
            evaluator = HyPEEvaluator(
                mfa, index=index, analyzer=ViabilityAnalyzer(mfa, index.bits)
            )
        result = evaluator.run(self.document.root)
        return result.answers, result.stats, algo
