"""SMOQE — the Secure MOdular Query Engine (the paper's prototype [10]).

The deployment scenario of Section 1: a server holds an XML document; each
user group is given a *virtual* view (their authorised window on the data)
and poses (regular) XPath queries against it.  The engine

1. rewrites the view query into an MFA over the source (Algorithm
   ``rewrite``, Section 5) — through the :mod:`repro.compile` pipeline,
   cached per ``(view fingerprint, normalised query)``;
2. evaluates the MFA with HyPE (or an OptHyPE variant) directly on the
   source document — no view is ever materialised;
3. returns the answers.

The engine doubles as a stand-alone regular-XPath engine (the paper calls
SMOQE "the first regular XPath engine"): :meth:`SMOQE.evaluate` compiles
and runs any ``Xreg`` query on the source document.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.mfa import MFA
from ..errors import ViewError
from ..hype.api import ALGORITHMS, HYPE
from ..hype.core import HyPEStats
from ..serve.cache import CachedPlan, CacheStats, PlanCache
from ..views.spec import ViewSpec
from ..xpath import ast
from ..xpath.parser import parse_query
from ..xpath.unparse import unparse
from ..xtree.node import Node, XMLTree


@dataclass
class QueryAnswer:
    """Answer set plus provenance of how it was computed."""

    nodes: set[Node]
    mfa: MFA
    stats: HyPEStats
    algorithm: str
    view: str | None = None
    query_text: str = ""
    # Content hash of the document the answer was computed over (None
    # for engine paths that predate multi-document serving).
    document: str | None = None

    def ids(self) -> list[int]:
        """Sorted document-order node ids (stable for display/tests)."""
        return sorted(node.node_id for node in self.nodes)


@dataclass
class _ViewEntry:
    spec: ViewSpec


class SMOQE:
    """One engine instance serves one source document and many views.

    Compiled plans (rewritten MFAs and directly compiled queries) live in
    a shared two-tier :class:`repro.serve.cache.PlanCache` keyed by
    ``(view fingerprint, normalised query, format version)`` — pass one
    in to share plans with a
    :class:`repro.serve.service.QueryService` over the same document, or
    construct it over a :class:`repro.compile.store.PlanStore` to reuse
    plans across restarts.
    """

    def __init__(
        self,
        document: "XMLTree | IndexedDocument",
        default_algorithm: str = HYPE,
        cache: PlanCache | None = None,
        cache_capacity: int = 256,
    ) -> None:
        from ..docstore.document import IndexedDocument

        if default_algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {default_algorithm!r}")
        # Plain trees are wrapped into a (private) IndexedDocument, so
        # the engine gets the columnar hot loop and build-once indexes
        # transparently; passing a store-shared document shares its
        # layout and indexes with every other holder.
        self._doc = (
            document
            if isinstance(document, IndexedDocument)
            else IndexedDocument(document)
        )
        self.document = self._doc.tree
        self.default_algorithm = default_algorithm
        self.cache = cache if cache is not None else PlanCache(cache_capacity)
        self._views: dict[str, _ViewEntry] = {}

    # ------------------------------------------------------------------
    # View administration
    # ------------------------------------------------------------------
    def register_view(self, name: str, spec: ViewSpec) -> None:
        """Register a view definition under ``name``."""
        if name in self._views:
            raise ViewError(f"view {name!r} already registered")
        self._views[name] = _ViewEntry(spec)

    def views(self) -> list[str]:
        """Registered view names."""
        return sorted(self._views)

    def view_spec(self, name: str) -> ViewSpec:
        """The specification registered under ``name``."""
        try:
            return self._views[name].spec
        except KeyError:
            raise ViewError(f"unknown view {name!r}") from None

    # ------------------------------------------------------------------
    # Query answering on views (the headline feature)
    # ------------------------------------------------------------------
    def answer(
        self,
        view: str,
        query: str | ast.Path,
        algorithm: str | None = None,
    ) -> QueryAnswer:
        """Answer a query posed on a *virtual* view.

        The rewriting is cached, so repeated queries over the same view pay
        only evaluation time.
        """
        query_ast = parse_query(query) if isinstance(query, str) else query
        plan = self._rewritten(view, query_ast)
        nodes, stats, algo = self._run(plan, algorithm)
        return QueryAnswer(
            nodes, plan.mfa, stats, algo, view=view, query_text=unparse(query_ast)
        )

    def rewrite(self, view: str, query: str | ast.Path) -> MFA:
        """Expose the rewritten MFA (for inspection or external evaluation)."""
        query_ast = parse_query(query) if isinstance(query, str) else query
        return self._rewritten(view, query_ast).mfa

    def _rewritten(self, view: str, query_ast: ast.Path) -> CachedPlan:
        entry = self._views.get(view)
        if entry is None:
            raise ViewError(f"unknown view {view!r}")
        return self.cache.plan(entry.spec, query_ast)

    # ------------------------------------------------------------------
    # Stand-alone regular XPath engine
    # ------------------------------------------------------------------
    def evaluate(
        self, query: str | ast.Path, algorithm: str | None = None
    ) -> QueryAnswer:
        """Evaluate a (regular) XPath query directly on the source."""
        query_ast = parse_query(query) if isinstance(query, str) else query
        plan = self.cache.plan(None, query_ast)
        nodes, stats, algo = self._run(plan, algorithm)
        return QueryAnswer(
            nodes, plan.mfa, stats, algo, query_text=unparse(query_ast)
        )

    # ------------------------------------------------------------------
    def _run(self, plan: CachedPlan, algorithm: str | None):
        algo = algorithm or self.default_algorithm
        if algo not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {algo!r}")
        doc = self._doc
        compiled = plan.compiled(algo, doc.tree, doc)
        result = compiled.run(doc.tree.root, layout=doc.layout)
        return result.answers, result.stats, algo

    def cache_stats(self) -> CacheStats:
        """Plan-cache hit/miss/eviction counters."""
        return self.cache.stats
