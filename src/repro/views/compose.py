"""View composition: a view of a view, collapsed into one view of the source.

A natural consequence of closure under rewriting (Theorem 3.2): given
``σ1 : D → D_V1`` and ``σ2 : D_V1 → D_V2``, the composition
``σ2 ∘ σ1 : D → D_V2`` is again an annotated-DTD view — every annotation
``σ2(A, B)`` (an ``Xreg`` query over ``D_V1``) is rewritten through ``σ1``
into an ``Xreg`` query over ``D`` using the Kleene-matrix rewriter.

Multi-level security policies compose this way: a hospital exposes σ1 to a
research institute, the institute exposes σ2 of *its* view to students, and
the hospital can serve the students directly through ``compose(σ2, σ1)``
without materialising anything.

Typing caveat: the rewriting of ``σ2(A,B)`` depends on the ``D_V1`` type of
the context node.  We track, per ``D_V2`` type, the set of ``D_V1`` types
its contexts can have (a reachability fixpoint from the roots); composition
requires this set to be a singleton for every view type — otherwise the
composed annotation would be ambiguous and :class:`ViewError` is raised.
This covers the common case (views whose annotations end at a single type
per edge); the fully general construction would need pair-typed view DTDs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ViewError
from ..xpath import ast
from ..xpath.normalize import simplify
from .spec import ViewSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle avoided at runtime
    from ..rewrite.direct import DirectRewriter


def compose(outer: ViewSpec, inner: ViewSpec) -> ViewSpec:
    """Compose two views: ``compose(σ2, σ1) = σ2 ∘ σ1``.

    Args:
        outer: ``σ2 : D_V1 → D_V2`` (queries over the inner view).
        inner: ``σ1 : D → D_V1``.

    Raises:
        ViewError: if the views do not chain (outer's source DTD must be
            inner's view DTD) or if a view type has ambiguous inner typing.
    """
    from ..rewrite.direct import DirectRewriter  # deferred: import cycle

    if outer.source_dtd.productions != inner.view_dtd.productions:
        raise ViewError(
            "views do not chain: outer.source_dtd must equal inner.view_dtd"
        )
    rewriter = DirectRewriter(inner)
    context_types = _context_types(outer, rewriter)

    annotations: dict[tuple[str, str], ast.Path] = {}
    for (parent, child), query in outer.annotations.items():
        inner_types = context_types.get(parent)
        if not inner_types:
            # Unreachable view type: annotate with an empty query.
            annotations[(parent, child)] = _empty_path()
            continue
        (context_type,) = inner_types  # singleton, enforced below
        matrix = rewriter.path_matrix(query)
        alternatives = list(matrix.row(context_type).values())
        if not alternatives:
            annotations[(parent, child)] = _empty_path()
            continue
        combined = alternatives[0]
        for alternative in alternatives[1:]:
            combined = ast.Union(combined, alternative)
        annotations[(parent, child)] = simplify(combined)

    return ViewSpec(inner.source_dtd, outer.view_dtd, annotations)


def _context_types(
    outer: ViewSpec, rewriter: "DirectRewriter"
) -> dict[str, set[str]]:
    """Fixpoint: which inner-view types can be the context of each outer type.

    Raises:
        ViewError: when some reachable outer type has more than one
            possible inner context type.
    """
    root2 = outer.view_dtd.root
    root1 = outer.source_dtd.root
    result: dict[str, set[str]] = {root2: {root1}}
    frontier = [root2]
    while frontier:
        parent = frontier.pop()
        for context_type in result[parent]:
            for child in dict.fromkeys(outer.view_dtd.child_types(parent)):
                query = outer.annotation(parent, child)
                matrix = rewriter.path_matrix(query)
                # End types of σ2(parent, child) from this context.
                end_types = set(matrix.row(context_type))
                if not end_types:
                    continue
                known = result.setdefault(child, set())
                before = len(known)
                known |= end_types
                if len(known) > 1:
                    raise ViewError(
                        f"composition is ambiguous: view type {child!r} has "
                        f"inner context types {sorted(known)}"
                    )
                if len(known) != before and child not in frontier:
                    frontier.append(child)
    return result


def _empty_path() -> ast.Path:
    return ast.Filtered(ast.Empty(), ast.Not(ast.Exists(ast.Empty())))
