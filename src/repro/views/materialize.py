"""View materialisation ``σ(T)`` with provenance.

The engine answers queries on *virtual* views, but materialisation is still
essential: it defines the semantics the rewriting must preserve
(``Q(σ(T)) = Q'(T)``) and is how the test suite checks every rewriting
end-to-end.  Each materialised view node remembers its *source context
node*, so an answer set over the view can be compared, node for node,
against an answer set over the source.

Materialisation is top-down (Example 2.2): the view root pairs with the
source root; for a view node of type ``A`` with source context ``u`` and
each child type ``B`` of ``A``, every node of ``σ(A,B)(u)`` (in document
order) becomes one ``B`` child with that node as its context.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtd.model import Choice, EmptyContent, Sequence, StrContent
from ..errors import ViewError
from ..xpath.evaluator import evaluate
from ..xtree.node import Node, TEXT_LABEL, XMLTree
from .spec import ViewSpec

#: Hard bound on view depth: recursive views over finite documents terminate
#: because annotations move strictly down the source tree, but a misbehaving
#: spec (e.g. an ε-annotation cycle) would recurse forever without this.
#: Kept well under Python's recursion limit (materialisation uses ~3 stack
#: frames per view level); real views track source depth, which is tiny.
MAX_VIEW_DEPTH = 256


@dataclass
class MaterializedView:
    """The result of :func:`materialize`: the view tree plus provenance."""

    tree: XMLTree
    #: view node -> source context node
    provenance: dict[Node, Node]

    def source_of(self, view_node: Node) -> Node:
        """The source context node a view node was generated from."""
        return self.provenance[view_node]

    def sources(self, view_nodes) -> set[Node]:
        """Map a set of view nodes to their source nodes."""
        return {self.provenance[v] for v in view_nodes}


def materialize(spec: ViewSpec, source: XMLTree) -> MaterializedView:
    """Compute ``σ(T)`` for ``σ = spec`` and ``T = source``.

    Raises:
        ViewError: if the view recurses without consuming source structure
            (depth exceeds :data:`MAX_VIEW_DEPTH`).
    """
    provenance: dict[Node, Node] = {}
    root = Node(spec.view_dtd.root)
    provenance[root] = source.root
    _expand(spec, root, source.root, 0, provenance)
    tree = XMLTree(root)
    return MaterializedView(tree, provenance)


def _expand(
    spec: ViewSpec,
    view_node: Node,
    context: Node,
    depth: int,
    provenance: dict[Node, Node],
) -> None:
    if depth > MAX_VIEW_DEPTH:
        raise ViewError(
            "view recursion exceeded depth bound - the view specification "
            "likely cycles without descending into the source document"
        )
    content = spec.view_dtd.production(view_node.label)
    if isinstance(content, StrContent):
        view_node.append(Node(TEXT_LABEL, context.text()))
        return
    if isinstance(content, EmptyContent):
        return
    if isinstance(content, Sequence):
        for item in content.items:
            _emit_children(
                spec, view_node, context, item.label, depth, provenance
            )
        return
    assert isinstance(content, Choice)
    for option in content.options:
        _emit_children(spec, view_node, context, option, depth, provenance)


def _emit_children(
    spec: ViewSpec,
    view_node: Node,
    context: Node,
    child_type: str,
    depth: int,
    provenance: dict[Node, Node],
) -> None:
    query = spec.annotation(view_node.label, child_type)
    results = sorted(evaluate(query, context), key=_document_order)
    for source_node in results:
        child = Node(child_type)
        provenance[child] = source_node
        view_node.append(child)
        _expand(spec, child, source_node, depth + 1, provenance)


def _document_order(node: Node) -> int:
    return node.node_id
