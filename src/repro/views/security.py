"""Security-policy front end: derive view specifications from access policies.

The paper motivates views by XML access control [2, 5, 9]: the server
defines, per user group, a view containing all and only the data the group
may access.  This module provides the policy-level interface in the style
of Fan/Chan/Garofalakis security views [9]: each document-DTD edge is
annotated ``allow``, ``deny`` or a conditional ``Xreg`` filter, and a
:class:`ViewSpec` (over a derived view DTD) is generated mechanically.

* ``allow`` — the child is visible whenever its parent is.
* ``deny``  — the child subtree is hidden entirely; denied element types are
  removed from the view DTD (with their now-unreachable descendants).
* a filter string ``q`` — the child is visible iff ``q`` holds at it; the
  derived annotation is ``B[q]``.

The derived view keeps the document DTD's shape on visible types, so it is a
*projection* view; the fully general machinery (restructuring views like
``σ0``) remains available through :class:`~repro.views.spec.ViewSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..dtd.graph import reachable_types
from ..dtd.model import (
    Choice,
    Content,
    DTD,
    EmptyContent,
    SeqItem,
    Sequence,
    StrContent,
)
from ..errors import ViewError
from ..xpath import ast
from ..xpath.parser import parse_filter
from .spec import ViewSpec

ALLOW = "allow"
DENY = "deny"


@dataclass
class AccessPolicy:
    """An access policy over a document DTD.

    Attributes:
        dtd: The document DTD being protected.
        edge_rules: Per DTD edge ``(A, B)``: ``"allow"``, ``"deny"``, or a
            filter string/AST making visibility conditional.
        default: Rule applied to edges absent from ``edge_rules``.
    """

    dtd: DTD
    edge_rules: dict[tuple[str, str], str | ast.Filter] = field(
        default_factory=dict
    )
    default: str = ALLOW

    def rule(self, parent: str, child: str) -> str | ast.Filter:
        """The effective rule for an edge."""
        return self.edge_rules.get((parent, child), self.default)


def derive_view(policy: AccessPolicy) -> ViewSpec:
    """Derive the :class:`ViewSpec` a policy induces.

    Raises:
        ViewError: if the policy denies the root's entire content or
            conditions an edge with an unparsable filter.
    """
    dtd = policy.dtd
    visible = _visible_types(policy)
    if dtd.root not in visible:
        raise ViewError("policy hides the document root; view would be empty")

    productions: dict[str, Content] = {}
    annotations: dict[tuple[str, str], ast.Path] = {}
    for label in visible:
        content = dtd.production(label)
        productions[label] = _project_content(policy, label, content, visible)
        for child in productions[label].child_labels():
            annotations[(label, child)] = _annotation(policy, label, child)
    view_dtd = DTD(dtd.root, productions)
    return ViewSpec(dtd, view_dtd, annotations)


def _visible_types(policy: AccessPolicy) -> set[str]:
    """Types reachable from the root through non-denied edges."""
    dtd = policy.dtd
    seen = {dtd.root}
    frontier = [dtd.root]
    while frontier:
        label = frontier.pop()
        for child in dtd.child_types(label):
            if policy.rule(label, child) == DENY:
                continue
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen


def _project_content(
    policy: AccessPolicy, label: str, content: Content, visible: set[str]
) -> Content:
    if isinstance(content, (StrContent, EmptyContent)):
        return content
    if isinstance(content, Sequence):
        items: list[SeqItem] = []
        for item in content.items:
            rule = policy.rule(label, item.label)
            if rule == DENY:
                continue
            conditional = not (isinstance(rule, str) and rule == ALLOW)
            # Conditional children may be filtered out, so they become
            # starred in the view DTD to keep it truthful.
            items.append(SeqItem(item.label, item.starred or conditional))
        if not items:
            return EmptyContent()
        return Sequence(tuple(items))
    assert isinstance(content, Choice)
    options = tuple(
        option
        for option in content.options
        if policy.rule(label, option) != DENY
    )
    if not options:
        return EmptyContent()
    if len(options) == 1:
        # Normal form requires 2+ choice options; degrade to an optional
        # child (the other branch of the disjunction is hidden).
        return Sequence((SeqItem(options[0], True),))
    return Choice(options)


def _annotation(policy: AccessPolicy, parent: str, child: str) -> ast.Path:
    rule = policy.rule(parent, child)
    if rule == ALLOW:
        return ast.Label(child)
    if rule == DENY:  # pragma: no cover - filtered out before this point
        raise ViewError(f"denied edge ({parent}, {child}) cannot be annotated")
    if isinstance(rule, str):
        rule = parse_filter(rule)
    return ast.Filtered(ast.Label(child), rule)


def policy_from_mapping(
    dtd: DTD,
    rules: Mapping[tuple[str, str], str],
    default: str = ALLOW,
) -> AccessPolicy:
    """Build an :class:`AccessPolicy` from a plain mapping of edge rules."""
    checked: dict[tuple[str, str], str | ast.Filter] = {}
    edges = set(dtd.edges())
    for edge, rule in rules.items():
        if edge not in edges:
            raise ViewError(f"policy rule for unknown DTD edge {edge}")
        checked[edge] = rule
    return AccessPolicy(dtd, checked, default)
