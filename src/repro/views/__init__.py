"""XML views: specifications, materialisation, security policies, samples."""

from .compose import compose
from .materialize import MaterializedView, materialize
from .samples import HEART_DISEASE, SIGMA0_ANNOTATIONS, sigma0
from .security import ALLOW, DENY, AccessPolicy, derive_view, policy_from_mapping
from .spec import ViewSpec, copy_view, view_spec

__all__ = [
    "ViewSpec",
    "view_spec",
    "copy_view",
    "materialize",
    "compose",
    "MaterializedView",
    "sigma0",
    "SIGMA0_ANNOTATIONS",
    "HEART_DISEASE",
    "AccessPolicy",
    "derive_view",
    "policy_from_mapping",
    "ALLOW",
    "DENY",
]
