"""The paper's running security view ``σ0`` (Fig. 1(c), Example 2.2).

Defined for a research institute studying inherited heart disease: the view
exposes only heart-disease patients and their parent hierarchy; per-visit
records are an ``empty`` element when the treatment was a test (hidden) and
a ``diagnosis`` when it was a medication.  Names, addresses, tests and
doctor data never appear in the view.
"""

from __future__ import annotations

from ..dtd.samples import hospital_dtd, hospital_view_dtd
from .spec import ViewSpec, view_spec

#: The diagnosis text that triggers view membership in σ0.
HEART_DISEASE = "heart disease"

#: Fig. 1(c), queries Q1–Q6, in the paper's concrete syntax.
SIGMA0_ANNOTATIONS: dict[tuple[str, str], str] = {
    # Q1: patients with a heart-disease diagnosis
    ("hospital", "patient"): (
        "department/patient"
        "[visit/treatment/medication/diagnosis/text() = 'heart disease']"
    ),
    # Q2: the parent hierarchy
    ("patient", "parent"): "parent",
    # Q3: records come from visits
    ("patient", "record"): "visit",
    # Q4: a parent is described by a patient element
    ("parent", "patient"): "patient",
    # Q5: test treatments are exposed as empty records
    ("record", "empty"): "treatment/test",
    # Q6: medication treatments expose their diagnosis
    ("record", "diagnosis"): "treatment/medication/diagnosis",
}


def sigma0() -> ViewSpec:
    """Build the view specification ``σ0`` of Example 2.2."""
    return view_spec(hospital_dtd(), hospital_view_dtd(), SIGMA0_ANNOTATIONS)
