"""XML view specifications: annotated view DTDs (Section 2.3).

A view is a mapping ``σ : D → D_V`` given by annotating every edge
``(A, B)`` of the view DTD graph with an ``Xreg`` query ``σ(A, B)`` over
documents of the *document* DTD ``D``: given an ``A`` element of the view
whose source context is node ``u``, ``σ(A,B)(u)`` computes the source nodes
that become its ``B`` children.  This follows the annotation style of
commercial systems (Oracle AXSD, IBM DAD, SQLServer annotated XSDs) that the
paper adopts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping

from ..dtd.model import DTD, StrContent
from ..errors import ViewError
from ..xpath import ast
from ..xpath.fragment import to_xreg
from ..xpath.parser import parse_query

Annotation = ast.Path
EdgeKey = tuple[str, str]


@dataclass
class ViewSpec:
    """A view definition ``σ : D → D_V``.

    Attributes:
        source_dtd: The document DTD ``D``.
        view_dtd: The view DTD ``D_V``.
        annotations: Mapping from view-DTD edges ``(A, B)`` to ``Xreg``
            queries over ``D``.  Strings are parsed on construction.
    """

    source_dtd: DTD
    view_dtd: DTD
    annotations: dict[EdgeKey, Annotation] = field(default_factory=dict)

    def __post_init__(self) -> None:
        parsed: dict[EdgeKey, Annotation] = {}
        for edge, query in self.annotations.items():
            if isinstance(query, str):
                query = parse_query(query)
            parsed[edge] = to_xreg(query)
        self.annotations = parsed
        self._fingerprint: str | None = None
        self.validate()

    # ------------------------------------------------------------------
    def annotation(self, parent: str, child: str) -> Annotation:
        """``σ(parent, child)``; raises :class:`ViewError` if unannotated."""
        try:
            return self.annotations[(parent, child)]
        except KeyError:
            raise ViewError(
                f"view edge ({parent!r}, {child!r}) has no annotation"
            ) from None

    def size(self) -> int:
        """|σ|: total AST size of all annotations (the paper's measure)."""
        return sum(q.size() for q in self.annotations.values())

    @property
    def is_recursive(self) -> bool:
        """Whether the *view* is recursive (i.e. ``D_V`` is recursive)."""
        from ..dtd.graph import is_recursive

        return is_recursive(self.view_dtd)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the specification (hex, stable across processes).

        Two :class:`ViewSpec` instances describing the same view — same
        DTDs, same annotations up to semantics-preserving query
        normalisation — share a fingerprint, while any change to either
        DTD or any annotation produces a new one.  Plan-cache keys carry
        this hash instead of the registered view *name*, so holders of a
        shared cache (or of one on-disk plan store) can never serve each
        other's rewritings across different specs.  The canonical text
        below is part of the persistent key scheme: changing it is a
        format change (bump ``repro.compile.artifact.FORMAT_VERSION``).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for line in self._canonical_lines():
                digest.update(line.encode("utf-8"))
                digest.update(b"\n")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def _canonical_lines(self) -> list[str]:
        """Order-independent textual form of the spec (hash input)."""
        from ..xpath.normalize import normal_form
        from ..xpath.unparse import unparse

        lines = ["source"]
        lines.extend(_canonical_dtd_lines(self.source_dtd))
        lines.append("view")
        lines.extend(_canonical_dtd_lines(self.view_dtd))
        lines.append("annotations")
        for (parent, child), query in sorted(self.annotations.items()):
            lines.append(f"{parent} {child} = {unparse(normal_form(query))}")
        return lines

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every view-DTD edge is annotated and refers to known types.

        Raises:
            ViewError: on missing or dangling annotations.
        """
        edges = set(self.view_dtd.edges())
        for edge in edges:
            if edge not in self.annotations:
                raise ViewError(f"missing annotation for view edge {edge}")
        for edge in self.annotations:
            if edge not in edges:
                raise ViewError(
                    f"annotation for {edge} does not match any view-DTD edge"
                )
        for edge, query in self.annotations.items():
            for label in ast.labels_used(query):
                if label not in self.source_dtd.productions:
                    raise ViewError(
                        f"annotation for {edge} mentions unknown source "
                        f"type {label!r}"
                    )

    def describe(self) -> str:
        """Multi-line summary in the style of Fig. 1(c)."""
        from ..xpath.unparse import unparse

        lines = []
        for (parent, child), query in sorted(self.annotations.items()):
            lines.append(f"sigma({parent}, {child}) = {unparse(query)}")
        return "\n".join(lines)


def _canonical_dtd_lines(dtd: DTD) -> list[str]:
    """Production lines sorted by element type (insertion-order free)."""
    lines = [f"root {dtd.root}"]
    lines.extend(
        f"{label} -> {content}"
        for label, content in sorted(dtd.productions.items())
    )
    return lines


def view_spec(
    source_dtd: DTD,
    view_dtd: DTD,
    annotations: Mapping[EdgeKey, Annotation | str],
) -> ViewSpec:
    """Convenience constructor accepting query strings as annotations."""
    return ViewSpec(source_dtd, view_dtd, dict(annotations))


def copy_view(dtd: DTD) -> ViewSpec:
    """The identity view of a DTD: every edge maps to its own child label.

    Useful as a rewriting sanity check — rewriting over the identity view
    must preserve query semantics verbatim.
    """
    annotations: dict[EdgeKey, Annotation] = {}
    for parent, child in dtd.edges():
        annotations[(parent, child)] = ast.Label(child)
    # Choice children may repeat edges; dict keys already dedupe.
    return ViewSpec(dtd, dtd, annotations)


def str_types(dtd: DTD) -> set[str]:
    """Element types with PCDATA content (their view nodes copy text)."""
    return {
        label
        for label, content in dtd.productions.items()
        if isinstance(content, StrContent)
    }
