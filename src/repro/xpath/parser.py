"""Recursive-descent parser for (regular) XPath queries.

Grammar (concrete syntax for Section 2.1)::

    query      := union EOF
    union      := concat ('|' concat)*
    concat     := ['//'] postfix (('/' | '//') postfix)* ['//']
    postfix    := primary ('*' | '[' filter ']')*
    primary    := '(' union ')' | NAME | '*' | '.'
    filter     := orexpr
    orexpr     := andexpr ('or' andexpr)*
    andexpr    := funary ('and' funary)*
    funary     := 'not' '(' filter ')' | '(' filter ')' | pathpred
    pathpred   := 'text()' '=' STRING
                | union ['/' 'text()' '=' STRING]

``*`` is the wildcard where a step is expected and the Kleene star after a
complete sub-expression.  A parenthesised group inside a filter is resolved
by backtracking: it is first parsed as a path and re-parsed as a Boolean
group if that fails (paths cannot contain ``and``/``or``/``not``).
"""

from __future__ import annotations

from ..errors import QueryParseError
from . import ast
from .lexer import (
    AND,
    DOT,
    DSLASH,
    EOF,
    EQ,
    LBRACKET,
    LPAREN,
    NAME,
    NOT,
    OR,
    RBRACKET,
    RPAREN,
    SLASH,
    STAR,
    STRING,
    TEXTFN,
    Token,
    UNION,
    tokenize,
)

_STEP_STARTERS = {NAME, STAR, DOT, LPAREN}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise QueryParseError(
                f"expected {kind} at position {token.pos}, found "
                f"{token.kind}({token.value!r})"
            )
        return self.advance()

    def error(self, message: str) -> QueryParseError:
        token = self.peek()
        return QueryParseError(f"{message} at position {token.pos} "
                               f"(near {token.kind}({token.value!r}))")

    # -- path expressions ------------------------------------------------
    def union(self, in_filter: bool) -> ast.Path:
        result = self.concat(in_filter)
        while self.peek().kind == UNION:
            self.advance()
            result = ast.Union(result, self.concat(in_filter))
        return result

    def concat(self, in_filter: bool) -> ast.Path:
        result: ast.Path
        if self.peek().kind == DSLASH:
            self.advance()
            result = ast.DescOrSelf()
            if self.peek().kind in _STEP_STARTERS:
                result = ast.Concat(result, self.postfix(in_filter))
        else:
            result = self.postfix(in_filter)
        while True:
            kind = self.peek().kind
            if kind == SLASH:
                # Inside filters a trailing '/text() = c' belongs to the
                # enclosing predicate, not to the path.
                if in_filter and self.peek(1).kind == TEXTFN:
                    break
                self.advance()
                result = ast.Concat(result, self.postfix(in_filter))
            elif kind == DSLASH:
                self.advance()
                result = ast.Concat(result, ast.DescOrSelf())
                if self.peek().kind in _STEP_STARTERS:
                    result = ast.Concat(result, self.postfix(in_filter))
                # otherwise keep looping: '////' chains further '//' steps.
            else:
                break
        return result

    def postfix(self, in_filter: bool) -> ast.Path:
        result = self.primary(in_filter)
        while True:
            kind = self.peek().kind
            if kind == STAR:
                self.advance()
                result = ast.Star(result)
            elif kind == LBRACKET:
                self.advance()
                predicate = self.filter_expr()
                self.expect(RBRACKET)
                result = ast.Filtered(result, predicate)
            else:
                return result

    def primary(self, in_filter: bool) -> ast.Path:
        token = self.peek()
        if token.kind == NAME:
            self.advance()
            return ast.Label(token.value)
        if token.kind == STAR:
            self.advance()
            return ast.Wildcard()
        if token.kind == DOT:
            self.advance()
            return ast.Empty()
        if token.kind == LPAREN:
            self.advance()
            inner = self.union(in_filter)
            self.expect(RPAREN)
            return inner
        raise self.error("expected a path step")

    # -- filter expressions ----------------------------------------------
    def filter_expr(self) -> ast.Filter:
        return self.or_expr()

    def or_expr(self) -> ast.Filter:
        result = self.and_expr()
        while self.peek().kind == OR:
            self.advance()
            result = ast.Or(result, self.and_expr())
        return result

    def and_expr(self) -> ast.Filter:
        result = self.funary()
        while self.peek().kind == AND:
            self.advance()
            result = ast.And(result, self.funary())
        return result

    def funary(self) -> ast.Filter:
        token = self.peek()
        if token.kind == NOT:
            self.advance()
            self.expect(LPAREN)
            inner = self.filter_expr()
            self.expect(RPAREN)
            return ast.Not(inner)
        if token.kind == LPAREN:
            # Ambiguous: '(path)/...' vs. '(boolean group)'.  Try the path
            # reading first; on failure, backtrack to the Boolean reading.
            saved = self.pos
            try:
                return self.path_pred()
            except QueryParseError:
                self.pos = saved
            self.advance()  # '('
            inner = self.filter_expr()
            self.expect(RPAREN)
            return inner
        return self.path_pred()

    def path_pred(self) -> ast.Filter:
        if self.peek().kind == TEXTFN:
            self.advance()
            self.expect(EQ)
            value = self.expect(STRING)
            return ast.TextEquals(ast.Empty(), value.value)
        path = self.union(in_filter=True)
        if self.peek().kind == SLASH and self.peek(1).kind == TEXTFN:
            self.advance()
            self.advance()
            self.expect(EQ)
            value = self.expect(STRING)
            return ast.TextEquals(path, value.value)
        return ast.Exists(path)


def parse_query(source: str) -> ast.Path:
    """Parse a (regular) XPath query string into a :class:`~repro.xpath.ast.Path`.

    Raises:
        QueryParseError: on syntax errors, with the offending position.
    """
    parser = _Parser(tokenize(source))
    result = parser.union(in_filter=False)
    if parser.peek().kind != EOF:
        raise parser.error("trailing input after query")
    return result


def parse_filter(source: str) -> ast.Filter:
    """Parse a filter expression string (the ``q`` production)."""
    parser = _Parser(tokenize(source))
    result = parser.filter_expr()
    if parser.peek().kind != EOF:
        raise parser.error("trailing input after filter")
    return result
