"""The (regular) XPath language layer: AST, parser, printer, semantics."""

from . import ast, builders
from .evaluator import eval_path, evaluate, holds
from .fragment import (
    X_FRAGMENT,
    XREG_FRAGMENT,
    classify,
    in_x_fragment,
    require_x,
    to_xreg,
    to_xreg_filter,
)
from .normalize import canonical, canonical_filter, desugar, nullable, simplify
from .parser import parse_filter, parse_query
from .unparse import unparse

__all__ = [
    "ast",
    "builders",
    "parse_query",
    "parse_filter",
    "unparse",
    "evaluate",
    "eval_path",
    "holds",
    "classify",
    "in_x_fragment",
    "require_x",
    "to_xreg",
    "to_xreg_filter",
    "X_FRAGMENT",
    "XREG_FRAGMENT",
    "canonical",
    "canonical_filter",
    "desugar",
    "nullable",
    "simplify",
]
