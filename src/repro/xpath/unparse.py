"""Pretty-printer for query ASTs.

Produces strings the parser maps back to an equivalent AST; tested by the
round-trip property ``canonical(parse(unparse(q))) == canonical(q)`` (the
canonicalisation only re-associates ``/`` and ``|`` chains).
"""

from __future__ import annotations

from . import ast

# Precedence levels: union < concat < postfix (star/filter) < atom.
_UNION, _CONCAT, _POSTFIX, _ATOM = 1, 2, 3, 4


def unparse(node: ast.Path | ast.Filter) -> str:
    """Render a path or filter AST back to concrete syntax."""
    if isinstance(node, ast.Path):
        return _path(node, _UNION)
    return _filter(node, top=True)


def _prec(node: ast.Path) -> int:
    if isinstance(node, ast.Union):
        return _UNION
    if isinstance(node, ast.Concat):
        return _CONCAT
    if isinstance(node, ast.DescOrSelf):
        # '//' is only valid in concat position; as a star/filter operand it
        # must be parenthesised: '(//)*', not '//*' (that's '//' + wildcard).
        return _CONCAT
    if isinstance(node, (ast.Star, ast.Filtered)):
        return _POSTFIX
    return _ATOM


def _path(node: ast.Path, required: int) -> str:
    text = _path_text(node)
    if _prec(node) < required:
        return f"({text})"
    return text


def _flatten_concat(node: ast.Path, out: list[ast.Path]) -> None:
    if isinstance(node, ast.Concat):
        _flatten_concat(node.left, out)
        _flatten_concat(node.right, out)
    else:
        out.append(node)


def _path_text(node: ast.Path) -> str:
    if isinstance(node, ast.Empty):
        return "."
    if isinstance(node, ast.Label):
        return node.name
    if isinstance(node, ast.Wildcard):
        return "*"
    if isinstance(node, ast.DescOrSelf):
        return "//"
    if isinstance(node, ast.Union):
        return f"{_path(node.left, _UNION)} | {_path(node.right, _CONCAT)}"
    if isinstance(node, ast.Concat):
        items: list[ast.Path] = []
        _flatten_concat(node, items)
        parts: list[str] = []
        for i, item in enumerate(items):
            if isinstance(item, ast.DescOrSelf):
                parts.append("//")
            else:
                rendered = _path(item, _POSTFIX)
                if i > 0 and not isinstance(items[i - 1], ast.DescOrSelf):
                    parts.append("/")
                parts.append(rendered)
        return "".join(parts)
    if isinstance(node, ast.Star):
        return f"{_path(node.inner, _ATOM)}*"
    if isinstance(node, ast.Filtered):
        return f"{_path(node.path, _POSTFIX)}[{_filter(node.predicate, top=True)}]"
    raise TypeError(f"unknown path node {node!r}")


def _filter(node: ast.Filter, top: bool = False) -> str:
    if isinstance(node, ast.Exists):
        return _path(node.path, _UNION)
    if isinstance(node, ast.TextEquals):
        if isinstance(node.path, ast.Empty):
            return f"text() = '{node.value}'"
        return f"{_path(node.path, _CONCAT)}/text() = '{node.value}'"
    if isinstance(node, ast.Not):
        return f"not({_filter(node.inner, top=True)})"
    if isinstance(node, ast.And):
        return f"{_filter_operand(node.left)} and {_filter_operand(node.right)}"
    if isinstance(node, ast.Or):
        return f"{_filter_operand(node.left)} or {_filter_operand(node.right)}"
    raise TypeError(f"unknown filter node {node!r}")


def _filter_operand(node: ast.Filter) -> str:
    # Parenthesise nested Boolean operators so precedence survives reparsing;
    # TextEquals over a union path also needs parens ambiguity-wise.
    if isinstance(node, (ast.And, ast.Or)):
        return f"({_filter(node)})"
    return _filter(node)
