"""Programmatic construction DSL for query ASTs.

Workloads and tests read much better with combinators than with nested
dataclass constructors::

    q0 = txt_eq(seq("visit", "treatment", "medication", "diagnosis"),
                "heart disease")
    query = filt(seq("department", "patient"), q0)
"""

from __future__ import annotations

from typing import Union as TUnion

from . import ast

PathLike = TUnion[ast.Path, str]
FilterLike = TUnion[ast.Filter, ast.Path, str]


def path(value: PathLike) -> ast.Path:
    """Coerce a label string (or pass through a Path) to a Path AST."""
    if isinstance(value, ast.Path):
        return value
    if value == "*":
        return ast.Wildcard()
    if value == ".":
        return ast.Empty()
    if value == "//":
        return ast.DescOrSelf()
    return ast.Label(value)


def predicate(value: FilterLike) -> ast.Filter:
    """Coerce a path (or label string) to an existence filter."""
    if isinstance(value, ast.Filter):
        return value
    return ast.Exists(path(value))


def empty() -> ast.Path:
    """``ε``."""
    return ast.Empty()


def label(name: str) -> ast.Path:
    """``A``."""
    return ast.Label(name)


def wildcard() -> ast.Path:
    """``*`` step."""
    return ast.Wildcard()


def dos() -> ast.Path:
    """``//``."""
    return ast.DescOrSelf()


def seq(*parts: PathLike) -> ast.Path:
    """``p1/p2/.../pn`` (left-associated); ``seq()`` is ``ε``."""
    if not parts:
        return ast.Empty()
    result = path(parts[0])
    for part in parts[1:]:
        result = ast.Concat(result, path(part))
    return result


def union(*parts: PathLike) -> ast.Path:
    """``p1 ∪ ... ∪ pn`` (left-associated)."""
    if not parts:
        raise ValueError("union needs at least one alternative")
    result = path(parts[0])
    for part in parts[1:]:
        result = ast.Union(result, path(part))
    return result


def star(inner: PathLike) -> ast.Path:
    """``p*``."""
    return ast.Star(path(inner))


def filt(p: PathLike, f: FilterLike) -> ast.Path:
    """``p[f]``."""
    return ast.Filtered(path(p), predicate(f))


def exists(p: PathLike) -> ast.Filter:
    """Filter: path ``p`` selects something."""
    return ast.Exists(path(p))


def txt_eq(p: PathLike, value: str) -> ast.Filter:
    """Filter: ``p/text() = 'value'``."""
    return ast.TextEquals(path(p), value)


def not_(f: FilterLike) -> ast.Filter:
    """``¬f``."""
    return ast.Not(predicate(f))


def and_(*fs: FilterLike) -> ast.Filter:
    """``f1 ∧ ... ∧ fn`` (left-associated)."""
    if not fs:
        raise ValueError("and_ needs at least one operand")
    result = predicate(fs[0])
    for f in fs[1:]:
        result = ast.And(result, predicate(f))
    return result


def or_(*fs: FilterLike) -> ast.Filter:
    """``f1 ∨ ... ∨ fn`` (left-associated)."""
    if not fs:
        raise ValueError("or_ needs at least one operand")
    result = predicate(fs[0])
    for f in fs[1:]:
        result = ast.Or(result, predicate(f))
    return result
