"""Tokenizer for the (regular) XPath surface syntax.

The concrete syntax accepted by :mod:`repro.xpath.parser`::

    (patient/parent)*/patient[(parent/patient)*/record/diagnosis/text() = 'heart disease']
    department/patient[visit/treatment/medication/diagnosis/text() = 'heart disease']
    patient[* // record/diagnosis/text() = 'heart disease']
    a/b | c/d
    .[not(x) and (y or z)]

Notes on the two roles of ``*``: where a *step* is expected it is the
wildcard; where it follows a complete sub-expression it is the Kleene star.
The parser makes that call; the lexer just emits ``STAR``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QuerySyntaxError

# Token kinds
NAME = "NAME"
SLASH = "SLASH"  # /
DSLASH = "DSLASH"  # //
STAR = "STAR"  # *
UNION = "UNION"  # |
LPAREN = "LPAREN"
RPAREN = "RPAREN"
LBRACKET = "LBRACKET"
RBRACKET = "RBRACKET"
DOT = "DOT"  # . (the empty path ε)
TEXTFN = "TEXTFN"  # text()
EQ = "EQ"  # =
STRING = "STRING"  # '...' or "..."
NOT = "NOT"
AND = "AND"
OR = "OR"
EOF = "EOF"

_KEYWORDS = {"not": NOT, "and": AND, "or": OR}

_SINGLE = {
    "*": STAR,
    "|": UNION,
    "(": LPAREN,
    ")": RPAREN,
    "[": LBRACKET,
    "]": RBRACKET,
    ".": DOT,
    "=": EQ,
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    pos: int


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`QuerySyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "/":
            if i + 1 < n and source[i + 1] == "/":
                tokens.append(Token(DSLASH, "//", i))
                i += 2
            else:
                tokens.append(Token(SLASH, "/", i))
                i += 1
            continue
        if ch in _SINGLE:
            tokens.append(Token(_SINGLE[ch], ch, i))
            i += 1
            continue
        if ch in ("'", '"'):
            end = source.find(ch, i + 1)
            if end < 0:
                raise QuerySyntaxError(f"unterminated string at position {i}")
            tokens.append(Token(STRING, source[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isalpha() or ch == "_" or ch == "#":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] in "_-.#"):
                # '.' inside names would swallow the ε token; names in our
                # DTDs never contain '.', so stop names at '.' boundaries.
                if source[j] == ".":
                    break
                j += 1
            word = source[i:j]
            if word == "text" and source[j : j + 2] == "()":
                tokens.append(Token(TEXTFN, "text()", i))
                i = j + 2
                continue
            kind = _KEYWORDS.get(word, NAME)
            tokens.append(Token(kind, word, i))
            i = j
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(EOF, "", n))
    return tokens
