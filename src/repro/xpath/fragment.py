"""Fragment analysis: ``X`` (XPath) vs. ``Xreg`` (regular XPath).

Section 2.1: ``X`` is obtained from ``Xreg`` by replacing the general Kleene
star ``Q*`` with the descendant-or-self axis ``//``.  Membership is purely
syntactic on our ASTs: a query is in ``X`` iff it contains no ``Star`` node
(``DescOrSelf`` is allowed), and in ``Xreg`` always (``//`` desugars to
``Star(Wildcard)``).
"""

from __future__ import annotations

from ..errors import FragmentError
from . import ast
from .normalize import desugar, desugar_filter

X_FRAGMENT = "X"
XREG_FRAGMENT = "Xreg"


def in_x_fragment(node: ast.Path | ast.Filter) -> bool:
    """Whether the expression lies in the XPath fragment ``X``."""
    return not ast.contains_star(node)


def classify(node: ast.Path | ast.Filter) -> str:
    """Return ``"X"`` or ``"Xreg"`` for the smallest containing fragment."""
    return X_FRAGMENT if in_x_fragment(node) else XREG_FRAGMENT


def to_xreg(node: ast.Path) -> ast.Path:
    """Desugar to pure ``Xreg`` (no ``//`` nodes remain)."""
    return desugar(node)


def to_xreg_filter(node: ast.Filter) -> ast.Filter:
    """Filter version of :func:`to_xreg`."""
    return desugar_filter(node)


def require_x(node: ast.Path) -> ast.Path:
    """Assert membership in ``X``; raise :class:`FragmentError` otherwise."""
    if not in_x_fragment(node):
        raise FragmentError("query uses Kleene star, not in the XPath fragment X")
    return node
