"""AST normalisation: desugaring, simplification, canonical association.

Three jobs:

* :func:`desugar` turns the ``X``-fragment surface form ``//`` into the
  ``Xreg`` form ``Star(Wildcard)`` (``//`` ≡ ``(⋃Ele)*``, Section 2.1).
* :func:`simplify` applies local semantics-preserving rewrites, notably the
  star normalisations ``(ε)* → ε``, ``(p*)* → p*`` and
  ``(ε ∪ p)* → p*`` that keep compiled-automaton cycles label-consuming.
* :func:`canonical` re-associates ``/`` and ``|`` chains to the left, giving
  a canonical shape for parser round-trip tests.
"""

from __future__ import annotations

from . import ast


# ----------------------------------------------------------------------
# Desugaring
# ----------------------------------------------------------------------
def desugar(node: ast.Path) -> ast.Path:
    """Replace every ``//`` with ``Star(Wildcard)`` (path form)."""
    return _map_paths(node, _desugar_one)


def desugar_filter(node: ast.Filter) -> ast.Filter:
    """Replace every ``//`` with ``Star(Wildcard)`` (filter form)."""
    return _map_filter_paths(node, _desugar_one)


def _desugar_one(node: ast.Path) -> ast.Path:
    if isinstance(node, ast.DescOrSelf):
        return ast.Star(ast.Wildcard())
    return node


# ----------------------------------------------------------------------
# Nullability — whether ε ∈ L(Q) (the path can stay on the context node)
# ----------------------------------------------------------------------
def nullable(node: ast.Path) -> bool:
    """Whether the path may select the context node itself.

    ``Filtered`` paths count as nullable when their path part is — the
    filter may still reject the context node, so this is a sound
    over-approximation for the uses below (cycle analysis).
    """
    if isinstance(node, ast.Empty):
        return True
    if isinstance(node, (ast.Label, ast.Wildcard)):
        return False
    if isinstance(node, ast.DescOrSelf):
        return True
    if isinstance(node, ast.Star):
        return True
    if isinstance(node, ast.Concat):
        return nullable(node.left) and nullable(node.right)
    if isinstance(node, ast.Union):
        return nullable(node.left) or nullable(node.right)
    if isinstance(node, ast.Filtered):
        return nullable(node.path)
    raise TypeError(f"unknown path node {node!r}")


# ----------------------------------------------------------------------
# Simplification
# ----------------------------------------------------------------------
def simplify(node: ast.Path) -> ast.Path:
    """Bottom-up local simplification (semantics preserving)."""
    if isinstance(node, ast.Concat):
        left = simplify(node.left)
        right = simplify(node.right)
        if isinstance(left, ast.Empty):
            return right
        if isinstance(right, ast.Empty):
            return left
        return ast.Concat(left, right)
    if isinstance(node, ast.Union):
        left = simplify(node.left)
        right = simplify(node.right)
        if left == right:
            return left
        return ast.Union(left, right)
    if isinstance(node, ast.Star):
        inner = simplify(node.inner)
        if isinstance(inner, ast.Empty):
            return ast.Empty()
        if isinstance(inner, ast.Star):
            return inner
        # (ε ∪ p)* = p* — stars absorb the ε alternative.
        if isinstance(inner, ast.Union):
            stripped = _strip_empty_alternatives(inner)
            if stripped is None:
                return ast.Empty()
            inner = stripped
            if isinstance(inner, ast.Star):
                return inner
        return ast.Star(inner)
    if isinstance(node, ast.Filtered):
        return ast.Filtered(simplify(node.path), simplify_filter(node.predicate))
    return node


def simplify_filter(node: ast.Filter) -> ast.Filter:
    """Bottom-up simplification of filters (paths inside get simplified)."""
    if isinstance(node, ast.Exists):
        return ast.Exists(simplify(node.path))
    if isinstance(node, ast.TextEquals):
        return ast.TextEquals(simplify(node.path), node.value)
    if isinstance(node, ast.Not):
        inner = simplify_filter(node.inner)
        if isinstance(inner, ast.Not):
            return inner.inner
        return ast.Not(inner)
    if isinstance(node, ast.And):
        left = simplify_filter(node.left)
        right = simplify_filter(node.right)
        if left == right:
            return left
        return ast.And(left, right)
    if isinstance(node, ast.Or):
        left = simplify_filter(node.left)
        right = simplify_filter(node.right)
        if left == right:
            return left
        return ast.Or(left, right)
    raise TypeError(f"unknown filter node {node!r}")


def _strip_empty_alternatives(node: ast.Path) -> ast.Path | None:
    """Remove ``ε`` alternatives from a union tree; ``None`` if all were ε."""
    if isinstance(node, ast.Empty):
        return None
    if isinstance(node, ast.Union):
        left = _strip_empty_alternatives(node.left)
        right = _strip_empty_alternatives(node.right)
        if left is None:
            return right
        if right is None:
            return left
        return ast.Union(left, right)
    return node


# ----------------------------------------------------------------------
# Normal form (the query-compilation pipeline's normalize stage)
# ----------------------------------------------------------------------
def normal_form(node: ast.Path) -> ast.Path:
    """The full normalisation behind plan-cache keys (``repro.compile``).

    Semantics-preserving: syntactic variants of one query — ``//b`` vs
    ``(*)*/b``, redundant stars, re-associated unions, duplicate union
    alternatives — map to one normal form and hence one cache key.
    Duplicates are removed across whole union *chains* (not just adjacent
    pairs, which is all :func:`simplify` sees), and simplification runs
    again afterwards so shapes the dedup uncovers (e.g. a union collapsing
    to a lone nested star) still reduce.  The unparse text of this form is
    part of the on-disk plan-store key scheme, so changes here are format
    changes: bump ``repro.compile.artifact.FORMAT_VERSION`` alongside.
    """
    return canonical(
        simplify(_dedupe_unions(simplify(desugar(node))))
    )


def _dedupe_unions(node: ast.Path) -> ast.Path:
    """Drop duplicate alternatives from every union chain (set semantics)."""

    def dedupe(candidate: ast.Path) -> ast.Path:
        if not isinstance(candidate, ast.Union):
            return candidate
        items: list[ast.Path] = []
        _flatten(candidate, ast.Union, items)
        unique: list[ast.Path] = []
        for item in items:
            if item not in unique:
                unique.append(item)
        result = unique[0]
        for item in unique[1:]:
            result = ast.Union(result, item)
        return result

    return _map_paths(node, dedupe)


# ----------------------------------------------------------------------
# Canonical association (for round-trip testing)
# ----------------------------------------------------------------------
def canonical(node: ast.Path) -> ast.Path:
    """Left-associate all ``/`` and ``|`` chains, recursively."""
    return _map_paths(node, _reassoc)


def canonical_filter(node: ast.Filter) -> ast.Filter:
    """Filter version of :func:`canonical`."""
    return _map_filter_paths(node, _reassoc)


def _reassoc(node: ast.Path) -> ast.Path:
    if isinstance(node, ast.Concat):
        items: list[ast.Path] = []
        _flatten(node, ast.Concat, items)
        result = items[0]
        for item in items[1:]:
            result = ast.Concat(result, item)
        return result
    if isinstance(node, ast.Union):
        items = []
        _flatten(node, ast.Union, items)
        result = items[0]
        for item in items[1:]:
            result = ast.Union(result, item)
        return result
    return node


def _flatten(node: ast.Path, kind: type, out: list[ast.Path]) -> None:
    if isinstance(node, kind):
        _flatten(node.left, kind, out)  # type: ignore[attr-defined]
        _flatten(node.right, kind, out)  # type: ignore[attr-defined]
    else:
        out.append(node)


# ----------------------------------------------------------------------
# Generic bottom-up mapping
# ----------------------------------------------------------------------
def _map_paths(node: ast.Path, fn) -> ast.Path:
    if isinstance(node, ast.Concat):
        node = ast.Concat(_map_paths(node.left, fn), _map_paths(node.right, fn))
    elif isinstance(node, ast.Union):
        node = ast.Union(_map_paths(node.left, fn), _map_paths(node.right, fn))
    elif isinstance(node, ast.Star):
        node = ast.Star(_map_paths(node.inner, fn))
    elif isinstance(node, ast.Filtered):
        node = ast.Filtered(
            _map_paths(node.path, fn), _map_filter_paths(node.predicate, fn)
        )
    return fn(node)


def _map_filter_paths(node: ast.Filter, fn) -> ast.Filter:
    if isinstance(node, ast.Exists):
        return ast.Exists(_map_paths(node.path, fn))
    if isinstance(node, ast.TextEquals):
        return ast.TextEquals(_map_paths(node.path, fn), node.value)
    if isinstance(node, ast.Not):
        return ast.Not(_map_filter_paths(node.inner, fn))
    if isinstance(node, ast.And):
        return ast.And(
            _map_filter_paths(node.left, fn), _map_filter_paths(node.right, fn)
        )
    if isinstance(node, ast.Or):
        return ast.Or(
            _map_filter_paths(node.left, fn), _map_filter_paths(node.right, fn)
        )
    raise TypeError(f"unknown filter node {node!r}")
