"""AST for the regular XPath fragment ``Xreg`` and its XPath subfragment ``X``.

Grammar (Section 2.1 of the paper)::

    Q ::= ε | A | Q/Q | Q ∪ Q | Q* | Q[q]
    q ::= Q | Q/text() = 'c' | ¬q | q ∧ q | q ∨ q

``X`` replaces ``Q*`` by the descendant-or-self axis ``//``; we keep ``//``
as a distinct surface node (:class:`DescOrSelf`) so fragment membership is
decidable syntactically, and desugar it to ``Star(Wildcard)`` when an
``Xreg`` form is required (``//`` ≡ ``(⋃Ele)*``, Section 2.1).

All nodes are frozen dataclasses: hashable and comparable, which the
dynamic-programming rewriter (Section 5) relies on for memoisation.
"""

from __future__ import annotations

from dataclasses import dataclass


class Path:
    """Base class of path expressions (``Q`` productions)."""

    __slots__ = ()

    def size(self) -> int:
        """Number of AST nodes — the paper's ``|Q|`` measure."""
        raise NotImplementedError


class Filter:
    """Base class of filter expressions (``q`` productions)."""

    __slots__ = ()

    def size(self) -> int:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Path expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Empty(Path):
    """``ε`` — the empty path (self)."""

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class Label(Path):
    """``A`` — one child step to elements labelled ``name``."""

    name: str

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class Wildcard(Path):
    """``*`` — one child step to any element."""

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class DescOrSelf(Path):
    """``//`` — descendant-or-self (the ``X`` fragment's only recursion)."""

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class Concat(Path):
    """``Q1/Q2`` — path concatenation."""

    left: Path
    right: Path

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()


@dataclass(frozen=True)
class Union(Path):
    """``Q1 ∪ Q2`` — path union."""

    left: Path
    right: Path

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()


@dataclass(frozen=True)
class Star(Path):
    """``Q*`` — Kleene closure (``Xreg`` only)."""

    inner: Path

    def size(self) -> int:
        return 1 + self.inner.size()


@dataclass(frozen=True)
class Filtered(Path):
    """``Q[q]`` — keep only end nodes satisfying filter ``q``."""

    path: Path
    predicate: "Filter"

    def size(self) -> int:
        return 1 + self.path.size() + self.predicate.size()


# ----------------------------------------------------------------------
# Filter expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Exists(Filter):
    """``Q`` as a filter — some node is reachable via ``Q``."""

    path: Path

    def size(self) -> int:
        return 1 + self.path.size()


@dataclass(frozen=True)
class TextEquals(Filter):
    """``Q/text() = 'c'`` — some node reachable via ``Q`` has text ``c``."""

    path: Path
    value: str

    def size(self) -> int:
        return 1 + self.path.size()


@dataclass(frozen=True)
class Not(Filter):
    """``¬q``."""

    inner: Filter

    def size(self) -> int:
        return 1 + self.inner.size()


@dataclass(frozen=True)
class And(Filter):
    """``q1 ∧ q2``."""

    left: Filter
    right: Filter

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()


@dataclass(frozen=True)
class Or(Filter):
    """``q1 ∨ q2``."""

    left: Filter
    right: Filter

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()


# ----------------------------------------------------------------------
# Generic traversal helpers
# ----------------------------------------------------------------------
def path_children(node: Path | Filter) -> tuple[Path | Filter, ...]:
    """Direct AST children of a node (paths and filters alike)."""
    if isinstance(node, (Concat, Union, And, Or)):
        return (node.left, node.right)
    if isinstance(node, Star):
        return (node.inner,)
    if isinstance(node, Not):
        return (node.inner,)
    if isinstance(node, Filtered):
        return (node.path, node.predicate)
    if isinstance(node, (Exists, TextEquals)):
        return (node.path,)
    return ()


def iter_nodes(node: Path | Filter):
    """Yield every AST node of ``node``'s tree (pre-order)."""
    stack: list[Path | Filter] = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(path_children(current)))


def labels_used(node: Path | Filter) -> set[str]:
    """All element labels mentioned anywhere in the expression."""
    return {n.name for n in iter_nodes(node) if isinstance(n, Label)}


def contains_star(node: Path | Filter) -> bool:
    """Whether a Kleene star occurs anywhere (``Xreg``-only construct)."""
    return any(isinstance(n, Star) for n in iter_nodes(node))


def contains_desc_or_self(node: Path | Filter) -> bool:
    """Whether ``//`` occurs anywhere."""
    return any(isinstance(n, DescOrSelf) for n in iter_nodes(node))
