"""Reference evaluator: direct recursive set semantics of ``Xreg``.

This is the ground truth every other evaluator (HyPE, the two-pass baseline,
the XQuery simulation) is differentially tested against, and it doubles as
the "JAXP"-profile baseline of the experiments: like a conventional XPath
engine it re-evaluates filters at each candidate node with no cross-node
sharing, so it performs the repeated subtree passes HyPE avoids.

Semantics (Section 2.1): ``v[[Q]]`` is the set of nodes reachable from ``v``
via ``Q``; filters hold at a node when the qualifying path is non-empty
(or the text equality is witnessed).
"""

from __future__ import annotations

from typing import Iterable

from ..xtree.node import Node
from . import ast


def evaluate(query: ast.Path, context: Node) -> set[Node]:
    """Evaluate ``query`` at ``context``: the paper's ``v[[Q]]``."""
    return eval_path(query, {context})


def eval_path(query: ast.Path, nodes: Iterable[Node]) -> set[Node]:
    """Evaluate ``query`` at every node of ``nodes`` and union the results."""
    current = set(nodes)
    return _eval(query, current)


def holds(predicate: ast.Filter, node: Node) -> bool:
    """Whether filter ``predicate`` holds at ``node``."""
    if isinstance(predicate, ast.Exists):
        return bool(_eval(predicate.path, {node}))
    if isinstance(predicate, ast.TextEquals):
        targets = _eval(predicate.path, {node})
        return any(t.text() == predicate.value for t in targets)
    if isinstance(predicate, ast.Not):
        return not holds(predicate.inner, node)
    if isinstance(predicate, ast.And):
        return holds(predicate.left, node) and holds(predicate.right, node)
    if isinstance(predicate, ast.Or):
        return holds(predicate.left, node) or holds(predicate.right, node)
    raise TypeError(f"unknown filter node {predicate!r}")


def _eval(query: ast.Path, nodes: set[Node]) -> set[Node]:
    if not nodes:
        return set()
    if isinstance(query, ast.Empty):
        return set(nodes)
    if isinstance(query, ast.Label):
        return {
            child
            for node in nodes
            for child in node.children
            if child.label == query.name
        }
    if isinstance(query, ast.Wildcard):
        return {
            child for node in nodes for child in node.children if child.is_element
        }
    if isinstance(query, ast.DescOrSelf):
        result: set[Node] = set()
        for node in nodes:
            for descendant in node.iter_subtree():
                if descendant.is_element:
                    result.add(descendant)
        return result
    if isinstance(query, ast.Concat):
        return _eval(query.right, _eval(query.left, nodes))
    if isinstance(query, ast.Union):
        return _eval(query.left, nodes) | _eval(query.right, nodes)
    if isinstance(query, ast.Star):
        # Least fixpoint: reachability via zero or more `inner` hops.
        reached = set(nodes)
        frontier = set(nodes)
        while frontier:
            step = _eval(query.inner, frontier)
            frontier = step - reached
            reached |= frontier
        return reached
    if isinstance(query, ast.Filtered):
        selected = _eval(query.path, nodes)
        return {node for node in selected if holds(query.predicate, node)}
    raise TypeError(f"unknown path node {query!r}")
