"""The "GALAX" baseline: regular XPath via its XQuery translation, simulated.

Section 7: *"Existing alternatives rely on a translation of regular XPath
into a more powerful query language like XQuery ... the queries in XQuery
required considerably more time than their regular XPath counterparts."*

GALAX is unavailable offline, so we simulate the *cost profile* of the
standard translation (Kleene stars become recursive XQuery functions over
materialised node sequences):

* every evaluation step materialises intermediate node *sequences* (lists,
  duplicates included) rather than sets;
* Kleene stars iterate a recursive function: each round re-applies the body
  to the whole accumulated sequence (not just the frontier — recursive
  XQuery functions have no frontier bookkeeping) and deduplicates by
  document-order sort, until no new node appears;
* filters are re-evaluated from scratch at every candidate node.

The answers are exactly the reference semantics; only the cost model
differs.  This gives the same shape as the paper's GALAX observation: the
gap to HyPE grows dramatically with star depth and document size.
"""

from __future__ import annotations

from ..xpath import ast
from ..xpath.fragment import to_xreg
from ..xpath.parser import parse_query
from ..xtree.node import Node, XMLTree


class XQuerySimEvaluator:
    """Materialising, recursion-unrolling evaluator (GALAX profile)."""

    name = "xquery-sim (GALAX profile)"

    def __init__(self, query: str | ast.Path) -> None:
        if isinstance(query, str):
            query = parse_query(query)
        self.query = to_xreg(query)

    def run(self, tree: XMLTree | Node) -> set[Node]:
        context = tree.root if isinstance(tree, XMLTree) else tree
        return set(self._eval(self.query, [context]))

    # ------------------------------------------------------------------
    def _eval(self, query: ast.Path, sequence: list[Node]) -> list[Node]:
        if not sequence:
            return []
        if isinstance(query, ast.Empty):
            return list(sequence)
        if isinstance(query, ast.Label):
            return [
                child
                for node in sequence
                for child in node.children
                if child.label == query.name
            ]
        if isinstance(query, ast.Wildcard):
            return [
                child
                for node in sequence
                for child in node.children
                if child.is_element
            ]
        if isinstance(query, ast.Concat):
            return self._eval(query.right, self._eval(query.left, sequence))
        if isinstance(query, ast.Union):
            return self._eval(query.left, sequence) + self._eval(
                query.right, sequence
            )
        if isinstance(query, ast.Star):
            return self._star(query.inner, sequence)
        if isinstance(query, ast.Filtered):
            selected = self._eval(query.path, sequence)
            return [
                node for node in selected if self._holds(query.predicate, node)
            ]
        raise TypeError(f"unknown path node {query!r}")

    def _star(self, body: ast.Path, sequence: list[Node]) -> list[Node]:
        """Recursive-function unrolling: re-apply to the whole accumulation."""
        accumulated = _doc_sort_dedup(sequence)
        while True:
            # An XQuery recursive function passes the entire sequence down —
            # no frontier: the body is re-run over everything each round.
            expanded = self._eval(body, accumulated)
            merged = _doc_sort_dedup(accumulated + expanded)
            if len(merged) == len(accumulated):
                return merged
            accumulated = merged

    def _holds(self, predicate: ast.Filter, node: Node) -> bool:
        if isinstance(predicate, ast.Exists):
            return bool(self._eval(predicate.path, [node]))
        if isinstance(predicate, ast.TextEquals):
            return any(
                target.text() == predicate.value
                for target in self._eval(predicate.path, [node])
            )
        if isinstance(predicate, ast.Not):
            return not self._holds(predicate.inner, node)
        if isinstance(predicate, ast.And):
            return self._holds(predicate.left, node) and self._holds(
                predicate.right, node
            )
        if isinstance(predicate, ast.Or):
            return self._holds(predicate.left, node) or self._holds(
                predicate.right, node
            )
        raise TypeError(f"unknown filter node {predicate!r}")


def _doc_sort_dedup(sequence: list[Node]) -> list[Node]:
    """Document-order sort + deduplication (XQuery sequence semantics)."""
    seen: set[int] = set()
    unique: list[Node] = []
    for node in sorted(sequence, key=lambda n: n.node_id):
        if node.node_id not in seen:
            seen.add(node.node_id)
            unique.append(node)
    return unique
