"""The "JAXP"-profile baseline: conventional node-at-a-time XPath evaluation.

Section 7 compares HyPE against JAXP (Xalan/Xerces).  Xalan evaluates
XPath location steps with a per-node DOM walker: each step iterates child
lists node by node, descendant axes walk whole subtrees, and every filter
is re-evaluated from scratch at each candidate node — there is no sharing
of filter work between candidates and no pruning of irrelevant subtrees.

Offline we cannot run Xalan itself, so this baseline reproduces that cost
profile faithfully in the same substrate (pure Python, same tree) as HyPE:

* node-at-a-time child iteration per location step,
* full subtree walks for ``//``/Kleene closures (revisiting overlapping
  regions repeatedly, as DOM walkers do),
* per-candidate filter re-evaluation with zero memoisation.

Answers are exactly the reference semantics; only the cost model matches
JAXP.  (The bulk set-algebra evaluator in :mod:`repro.xpath.evaluator`
remains the library's correctness oracle.)
"""

from __future__ import annotations

from ..xpath import ast
from ..xpath.parser import parse_query
from ..xtree.node import Node, XMLTree


class NaiveEvaluator:
    """Node-at-a-time evaluation; the JAXP stand-in of the experiments."""

    name = "naive (JAXP profile)"

    def __init__(self, query: str | ast.Path) -> None:
        if isinstance(query, str):
            query = parse_query(query)
        self.query = query

    def run(self, tree: XMLTree | Node) -> set[Node]:
        """Evaluate at the tree root (or at a bare context node)."""
        context = tree.root if isinstance(tree, XMLTree) else tree
        result: list[Node] = []
        seen: set[int] = set()
        for node in self._walk(self.query, context):
            if node.node_id not in seen:
                seen.add(node.node_id)
                result.append(node)
        return set(result)

    # ------------------------------------------------------------------
    def _walk(self, query: ast.Path, node: Node):
        """Yield nodes reached from ``node`` via ``query`` (with duplicates)."""
        if isinstance(query, ast.Empty):
            yield node
            return
        if isinstance(query, ast.Label):
            name = query.name
            for child in node.children:
                if child.label == name:
                    yield child
            return
        if isinstance(query, ast.Wildcard):
            for child in node.children:
                if child.is_element:
                    yield child
            return
        if isinstance(query, ast.DescOrSelf):
            # Full subtree walk, node by node (the DOM-walker descendant axis).
            stack = [node]
            while stack:
                current = stack.pop()
                if current.is_element:
                    yield current
                    stack.extend(reversed(current.children))
            return
        if isinstance(query, ast.Concat):
            for middle in self._walk(query.left, node):
                yield from self._walk(query.right, middle)
            return
        if isinstance(query, ast.Union):
            yield from self._walk(query.left, node)
            yield from self._walk(query.right, node)
            return
        if isinstance(query, ast.Star):
            # Frontier expansion, one node at a time.
            visited = {node.node_id}
            frontier = [node]
            yield node
            while frontier:
                current = frontier.pop()
                for reached in self._walk(query.inner, current):
                    if reached.node_id not in visited:
                        visited.add(reached.node_id)
                        frontier.append(reached)
                        yield reached
            return
        if isinstance(query, ast.Filtered):
            for candidate in self._walk(query.path, node):
                if self._holds(query.predicate, candidate):
                    yield candidate
            return
        raise TypeError(f"unknown path node {query!r}")

    def _holds(self, predicate: ast.Filter, node: Node) -> bool:
        """Filter check: re-evaluated from scratch at every candidate."""
        if isinstance(predicate, ast.Exists):
            for _ in self._walk(predicate.path, node):
                return True
            return False
        if isinstance(predicate, ast.TextEquals):
            for target in self._walk(predicate.path, node):
                if target.text() == predicate.value:
                    return True
            return False
        if isinstance(predicate, ast.Not):
            return not self._holds(predicate.inner, node)
        if isinstance(predicate, ast.And):
            return self._holds(predicate.left, node) and self._holds(
                predicate.right, node
            )
        if isinstance(predicate, ast.Or):
            return self._holds(predicate.left, node) or self._holds(
                predicate.right, node
            )
        raise TypeError(f"unknown filter node {predicate!r}")
