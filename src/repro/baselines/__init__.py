"""Comparator evaluators for the Section 7 experiments."""

from .naive import NaiveEvaluator
from .twopass import TwoPassEvaluator
from .xquery_sim import XQuerySimEvaluator

__all__ = ["NaiveEvaluator", "TwoPassEvaluator", "XQuerySimEvaluator"]
