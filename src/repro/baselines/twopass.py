"""Koch-style two-pass evaluation [16] — the pruning ablation baseline.

The algorithm of Koch (VLDB 2003), as characterised in Sections 1 and 6 of
the paper: a *pre-processing scan* converts the document into a special
per-node format, a *bottom-up pass* evaluates all filters at all nodes
(even nodes the selection will never reach), and a *top-down pass* selects
answer nodes using the precomputed filter values.

Contrast with HyPE, which does all of this in a single pass and only
evaluates filters where the selecting NFA actually goes.  The benchmarks
use this baseline to quantify the value of HyPE's pruning: the two-pass
algorithm's filter pass costs ``Θ(|T|·|AFA|)`` regardless of the query's
selectivity.
"""

from __future__ import annotations

from ..automata.afa import FINAL, TRANS, WILDCARD
from ..automata.mfa import MFA
from ..automata.truth import resolve_operator_values
from ..hype.api import to_mfa
from ..xpath import ast
from ..xtree.node import Node, XMLTree


class TwoPassEvaluator:
    """Pre-process + bottom-up filters + top-down selection."""

    name = "two-pass (Koch profile)"

    def __init__(self, query: str | ast.Path | MFA) -> None:
        self.mfa = to_mfa(query)

    # ------------------------------------------------------------------
    def run(self, tree: XMLTree) -> set[Node]:
        order = self._preprocess(tree)
        values = self._bottom_up(tree, order)
        return self._top_down(tree, values)

    # ------------------------------------------------------------------
    def _preprocess(self, tree: XMLTree) -> list[Node]:
        """The extra document scan: bottom-up node order + child tables."""
        return [node for node in reversed(tree.nodes) if node.is_element]

    def _bottom_up(self, tree: XMLTree, order: list[Node]) -> list[int]:
        """Evaluate *every* AFA state at *every* element node.

        Returns one bitmask per node id: bit ``s`` set iff pool state ``s``
        is true at that node.
        """
        pool = self.mfa.pool
        states = pool.states
        all_states = frozenset(range(len(states)))
        values: list[int] = [0] * len(tree.nodes)
        for node in order:
            node_mask = 0

            def leaf_value(state: int, node=node) -> bool:
                holder = states[state]
                if holder.kind == FINAL:
                    return holder.pred is None or holder.pred.holds(node)
                # TRANS: look the target up in the children's masks.
                assert holder.kind == TRANS
                target_bit = 1 << holder.target  # type: ignore[operator]
                for child in node.children:
                    if not child.is_element:
                        continue
                    if holder.label != WILDCARD and child.label != holder.label:
                        continue
                    if values[child.node_id] & target_bit:
                        return True
                return False

            resolved = resolve_operator_values(pool, all_states, leaf_value)
            for state, value in resolved.items():
                if value:
                    node_mask |= 1 << state
            values[node.node_id] = node_mask
        return values

    def _top_down(self, tree: XMLTree, values: list[int]) -> set[Node]:
        """NFA run with gates read off the precomputed masks."""
        nfa = self.mfa.nfa
        answers: set[Node] = set()
        seen: set[tuple[int, int]] = set()
        frontier: list[tuple[Node, int]] = [(tree.root, nfa.start)]
        while frontier:
            node, state = frontier.pop()
            key = (node.node_id, state)
            if key in seen:
                continue
            seen.add(key)
            entry = nfa.ann.get(state)
            if entry is not None and not (values[node.node_id] >> entry) & 1:
                continue
            if state in nfa.finals:
                answers.add(node)
            for successor in nfa.eps[state]:
                frontier.append((node, successor))
            for child in node.children:
                if not child.is_element:
                    continue
                for successor in nfa.step_targets(state, child.label):
                    frontier.append((child, successor))
        return answers
