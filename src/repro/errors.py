"""Exception hierarchy for the SMOQE reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish the failure domain.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLParseError(ReproError):
    """Raised when an XML document string cannot be parsed."""


class DTDError(ReproError):
    """Raised for malformed DTD definitions."""


class DTDParseError(DTDError):
    """Raised when the textual DTD syntax cannot be parsed."""


class ValidationError(ReproError):
    """Raised when a document does not conform to a DTD."""


class QueryParseError(ReproError):
    """Raised when a (regular) XPath query string cannot be parsed."""


class QuerySyntaxError(QueryParseError):
    """Raised for token-level errors in a query string."""


class FragmentError(ReproError):
    """Raised when a query lies outside the expected language fragment."""


class ViewError(ReproError):
    """Raised for ill-formed view specifications."""


class RewriteError(ReproError):
    """Raised when query rewriting fails (e.g. unknown view labels)."""


class AutomatonError(ReproError):
    """Raised for structurally invalid automata."""


class EvaluationError(ReproError):
    """Raised when query/automaton evaluation encounters an invalid state."""


class QueryTooComplexError(ReproError):
    """Raised when compiling a query exceeds its resource budget.

    The query-bomb defense: MFA rewriting is worst-case exponential in
    nested view indirection, so the compiler carries step/state budgets
    (:class:`repro.guard.CompileBudget`) and surfaces a blowup as this
    structured error — counted under the ``"query-too-complex"``
    rejection kind — instead of burning unbounded CPU.
    """


class DeadlineError(ReproError):
    """Raised when a request exceeds its end-to-end deadline.

    Carries no partial answer by construction: expiry before evaluation
    drops the work on the pool, and expiry mid-descent abandons the
    run's cursors wholesale (rejected or complete, never partial).
    Counted under the ``"deadline"`` rejection kind.
    """


class ServiceError(ReproError):
    """Raised for invalid requests to the multi-tenant query service."""


class AuthorizationError(ServiceError):
    """Raised when a tenant requests data outside its security view."""


class DocumentError(ServiceError):
    """Raised when a request names a document outside the tenant's catalog.

    Kept distinct from :class:`AuthorizationError` so the metrics layer
    can count document-catalog rejections under their own structured
    kind (``"document"``) — an operator watching rejection kinds can
    tell a mis-routed document request from a view violation.
    """
